package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"ermia/internal/engine"
	"ermia/internal/faultfs"
	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// The crash-point sweep: run a seeded workload once while recording every
// storage operation, then for every write/sync boundary k materialize the
// durable image of a crash at k (plus seeded torn-write variants), recover,
// and check the durability invariant:
//
//  1. prefix consistency — the recovered primary state equals the state
//     after some prefix of the committed transactions (atomicity: no
//     transaction is half-recovered, aborted transactions leave no trace);
//  2. group-commit honesty — the prefix includes at least every transaction
//     whose durability was acknowledged before the crash point;
//  3. secondary consistency — every live record is reachable through its
//     secondary key and dead keys are not, after recovery rebuilds the
//     secondary index from checkpoint bindings and log records.
//
// Workload, trace, and torn lengths are pure functions of the seed, so any
// failure reproduces from the printed seed + point alone.

const (
	sweepSeed    = 0xE121A
	sweepSegSize = 16 << 10
	sweepBufSize = 8 << 10
)

func sweepConfig(st wal.Storage) Config {
	return Config{WAL: wal.Config{
		SegmentSize: sweepSegSize,
		BufferSize:  sweepBufSize,
		Storage:     st,
		// The caller drives flushing: storage operations happen in the
		// workload thread, in program order, making the trace deterministic.
		SyncFlush: true,
	}}
}

func skeyFor(key string) []byte { return []byte("sk-" + key) }

// sweepVal pads a short tag out to 256 bytes so the 160-transaction
// workload seals several 16KiB segments — without the weight, both
// checkpoint cuts would land inside the first segment and truncation
// would never unlink anything, leaving that crash window unswept.
func sweepVal(tag string) string {
	return tag + strings.Repeat(".", 256-len(tag))
}

// ackPoint marks a durability acknowledgement: after traceLen recorded
// storage operations, the first `commits` transactions were acked durable.
type ackPoint struct {
	traceLen int
	commits  int
}

// ackFloor returns how many leading commits are guaranteed durable in a
// crash image cut at trace index k.
func ackFloor(acks []ackPoint, k int) int {
	floor := 0
	for _, a := range acks {
		if a.traceLen <= k && a.commits > floor {
			floor = a.commits
		}
	}
	return floor
}

// runSweepWorkload drives a deterministic single-worker workload over the
// recorder: upserts, deletes, intentional aborts, periodic group-commit
// acks, and two checkpoint+truncate cycles. It returns the per-prefix
// expected states (states[i] = primary contents after i commits) and the
// acknowledgement points.
func runSweepWorkload(t testing.TB, seed uint64, rec *faultfs.Recorder) ([]map[string]string, []ackPoint) {
	t.Helper()
	db, err := Open(sweepConfig(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := db.CreateTable("t")
	si := db.CreateSecondaryIndex(tbl, "t-by-sk")

	rng := xrand.New2(seed, 0x5EE9)
	model := map[string]string{}
	states := []map[string]string{copyMap(model)}
	var acks []ackPoint

	const nTxns = 160
	for i := 0; i < nTxns; i++ {
		txn := db.BeginTxn(0)
		staged := copyMap(model)
		nOps := 1 + rng.Intn(3)
		for j := 0; j < nOps; j++ {
			key := fmt.Sprintf("k%02d", rng.Intn(24))
			val := sweepVal(fmt.Sprintf("t%03d-o%d", i, j))
			if _, exists := staged[key]; exists {
				if rng.Intn(3) == 0 {
					if err := txn.Delete(tbl, []byte(key)); err != nil {
						t.Fatalf("txn %d delete %s: %v", i, key, err)
					}
					delete(staged, key)
				} else {
					if err := txn.Update(tbl, []byte(key), []byte(val)); err != nil {
						t.Fatalf("txn %d update %s: %v", i, key, err)
					}
					staged[key] = val
				}
			} else {
				err := txn.InsertWithSecondary(tbl, []byte(key), []byte(val),
					[]SecondaryEntry{{Index: si, Key: skeyFor(key)}})
				if err != nil {
					t.Fatalf("txn %d insert %s: %v", i, key, err)
				}
				staged[key] = val
			}
		}
		if rng.Intn(10) == 0 {
			txn.Abort() // must leave no trace in any recovered state
		} else if err := txn.Commit(); err != nil {
			t.Fatalf("txn %d commit: %v", i, err)
		} else {
			model = staged
			states = append(states, copyMap(model))
		}
		if rng.Intn(4) == 0 {
			if err := db.WaitDurable(); err != nil {
				t.Fatalf("txn %d wait durable: %v", i, err)
			}
			acks = append(acks, ackPoint{len(rec.Ops()), len(states) - 1})
		}
		if i == nTxns/3 || i == 2*nTxns/3 {
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("txn %d checkpoint: %v", i, err)
			}
			if _, err := db.TruncateLog(); err != nil {
				t.Fatalf("txn %d truncate: %v", i, err)
			}
			// TruncateLog forces a Flush, so this is an ack point too.
			acks = append(acks, ackPoint{len(rec.Ops()), len(states) - 1})
		}
	}
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	acks = append(acks, ackPoint{len(rec.Ops()), len(states) - 1})
	return states, acks
}

// checkSweepPoint recovers from the crash image at p and verifies the
// durability invariant. All failure messages carry the seed and point, which
// fully determine the scenario.
func checkSweepPoint(t *testing.T, seed uint64, tr faultfs.Trace, p faultfs.Point, states []map[string]string, acks []ackPoint) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %#x, %v: %s", seed, p, fmt.Sprintf(format, args...))
	}
	img, err := faultfs.CrashImage(tr, p)
	if err != nil {
		fail("building crash image: %v", err)
	}
	db, err := Recover(sweepConfig(img))
	if err != nil {
		fail("recovery: %v", err)
	}
	defer db.Close()

	got := map[string]string{}
	tbl := db.OpenTable("t")
	si := db.OpenSecondaryIndex("t-by-sk")
	if tbl != nil {
		txn := db.BeginTxn(0)
		if err := txn.Scan(tbl, nil, nil, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		}); err != nil {
			fail("scan: %v", err)
		}
		// Secondary consistency: every live key reachable through its
		// secondary key with the same value; no dead key reachable.
		for k := 0; k < 24; k++ {
			key := fmt.Sprintf("k%02d", k)
			want, live := got[key]
			if si == nil {
				if live {
					fail("key %s live but secondary index not recovered", key)
				}
				continue
			}
			v, err := txn.GetBySecondary(si, skeyFor(key))
			if live {
				if err != nil {
					fail("GetBySecondary(%s): %v (want %q)", key, err, want)
				}
				if string(v) != want {
					fail("GetBySecondary(%s) = %q, want %q", key, v, want)
				}
			} else if !errors.Is(err, engine.ErrNotFound) {
				fail("GetBySecondary(%s) on dead key: v=%q err=%v", key, v, err)
			}
		}
		txn.Abort()
	} else if si != nil {
		fail("secondary index recovered without its table")
	}

	// Prefix consistency: the recovered state must equal some committed
	// prefix (scan from the newest so the matched prefix is maximal).
	match := -1
	for i := len(states) - 1; i >= 0; i-- {
		if mapsEqual(got, states[i]) {
			match = i
			break
		}
	}
	if match < 0 {
		fail("recovered state matches no committed prefix: %v", got)
	}
	// Group-commit honesty: acked transactions must be included.
	if floor := ackFloor(acks, p.Index); match < floor {
		fail("recovered prefix %d < acked floor %d", match, floor)
	}
}

// TestCrashPointSweep is the engine's crash-point sweep (≥ 50 points,
// including seeded torn-write variants of every flusher and checkpoint
// write).
func TestCrashPointSweep(t *testing.T) {
	seed := uint64(sweepSeed)

	// Record the workload twice: identical traces and states prove the
	// schedule is a pure function of the seed (no wall-clock, goroutine or
	// map-order dependence), which is what makes seed+point reproduction
	// sound.
	rec1 := faultfs.NewRecorder(wal.NewMemStorage())
	states, acks := runSweepWorkload(t, seed, rec1)
	rec2 := faultfs.NewRecorder(wal.NewMemStorage())
	states2, _ := runSweepWorkload(t, seed, rec2)
	tr := rec1.Ops()
	if err := traceDiff(tr, rec2.Ops()); err != nil {
		t.Fatalf("workload trace not deterministic: %v", err)
	}
	if len(states) != len(states2) {
		t.Fatalf("workload commits not deterministic: %d vs %d", len(states), len(states2))
	}

	// Window coverage: Points puts a pure crash point at every operation
	// boundary, so the sweep provably exercises a crash inside each
	// checkpoint-publication and truncation window iff the trace records the
	// operations that delimit them. Require all three: the temp-blob write
	// (a torn blob must be ignored by recovery), the publishing rename (a
	// crash between rename and the end record must still adopt the blob),
	// and the segment unlink (a crash mid-truncation leaves a log with a
	// removed prefix that recovery must accept).
	var ckptTmpWrites, ckptRenames, segRemoves int
	for _, op := range tr {
		switch {
		case op.Kind == faultfs.OpWrite && strings.HasPrefix(op.Name, "ckpt-") && strings.HasSuffix(op.Name, ".tmp"):
			ckptTmpWrites++
		case op.Kind == faultfs.OpRename && strings.HasPrefix(op.NewName, "ckpt-"):
			ckptRenames++
		case op.Kind == faultfs.OpRemove && strings.HasPrefix(op.Name, "log-"):
			segRemoves++
		}
	}
	if ckptTmpWrites == 0 || ckptRenames == 0 || segRemoves == 0 {
		t.Fatalf("trace misses a crash window: %d ckpt tmp writes, %d ckpt renames, %d segment removes",
			ckptTmpWrites, ckptRenames, segRemoves)
	}

	points := faultfs.Points(tr, seed, 0)
	if len(points) < 50 {
		t.Fatalf("only %d crash points (trace %d ops, %d writes); need ≥ 50",
			len(points), len(tr), tr.Writes())
	}
	torn := 0
	for _, p := range points {
		if p.Torn {
			torn++
		}
		checkSweepPoint(t, seed, tr, p, states, acks)
	}
	t.Logf("seed %#x: swept %d crash points (%d torn) over a %d-op trace, %d commits, %d acks",
		seed, len(points), torn, len(tr), len(states)-1, len(acks))
}

// traceDiff reports the first difference between two traces.
func traceDiff(a, b faultfs.Trace) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.Name != y.Name || x.Off != y.Off || !bytes.Equal(x.Data, y.Data) {
			return fmt.Errorf("op %d differs: {%v %s off=%d len=%d} vs {%v %s off=%d len=%d}",
				i, x.Kind, x.Name, x.Off, len(x.Data), y.Kind, y.Name, y.Off, len(y.Data))
		}
	}
	return nil
}

// TestCheckpointSurvivesInjectedError: an I/O error while writing the
// checkpoint blob fails the checkpoint cleanly — the engine keeps running,
// a later checkpoint succeeds, and recovery never sees the dead blob.
func TestCheckpointSurvivesInjectedError(t *testing.T) {
	inner := wal.NewMemStorage()
	inj := faultfs.NewInjector(inner, faultfs.Plan{})
	db, err := Open(sweepConfig(inj))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	for i := 0; i < 10; i++ {
		put(t, db, tbl, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}

	// Fail the next mutating operation: the checkpoint blob's Create.
	inj.SetFailOp(inj.OpCount() + 1)
	if err := db.Checkpoint(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("checkpoint over failing storage: %v", err)
	}

	// The engine is still live: more commits and a clean checkpoint.
	put(t, db, tbl, "after", "crash")
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Recover(sweepConfig(inner.Crash()))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	txn := db2.BeginTxn(0)
	if v, err := txn.Get(db2.OpenTable("t"), []byte("after")); err != nil || string(v) != "crash" {
		t.Fatalf("recovered after=%q err=%v", v, err)
	}
	txn.Abort()
}
