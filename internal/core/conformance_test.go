package core_test

import (
	"testing"

	"ermia/internal/core"
	"ermia/internal/engine"
	"ermia/internal/engine/enginetest"
	"ermia/internal/wal"
)

// TestConformance runs the shared engine conformance suite against both
// ERMIA configurations.
func TestConformance(t *testing.T) {
	for _, ser := range []struct {
		name string
		on   bool
	}{{"SI", false}, {"SSN", true}} {
		t.Run(ser.name, func(t *testing.T) {
			enginetest.Run(t, func(t *testing.T) engine.DB {
				db, err := core.Open(core.Config{
					WAL:          wal.Config{SegmentSize: 4 << 20, BufferSize: 1 << 20},
					Serializable: ser.on,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { db.Close() })
				return db
			})
		})
	}
}
