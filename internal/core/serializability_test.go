package core

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"ermia/internal/engine"
	"ermia/internal/histcheck"
	"ermia/internal/silo"
	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// runRandomHistory drives a random read-modify-write workload against an
// engine and records the committed footprints. Record values hold a per-key
// version counter, so the checker can reconstruct WR/WW/RW dependencies.
func runRandomHistory(t *testing.T, db engine.DB, workers, txnsPerWorker, keys int) *histcheck.History {
	t.Helper()
	tbl := db.CreateTable("h")
	h := histcheck.New()

	// Seed every key at version 1 in one recorded transaction.
	seed := db.Begin(0)
	var seedOps []histcheck.Op
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%03d", k)
		if err := seed.Insert(tbl, []byte(key), []byte("1")); err != nil {
			t.Fatal(err)
		}
		seedOps = append(seedOps, histcheck.Op{Key: key, Version: 1, Write: true})
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	h.Record(seedOps)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New2(uint64(id)+1, 42)
			for i := 0; i < txnsPerWorker; i++ {
				txn := db.Begin(id)
				nKeys := 2 + rng.Intn(3)
				ops := make([]histcheck.Op, 0, nKeys*2)
				ok := true
				seen := map[int]bool{}
				for j := 0; j < nKeys && ok; j++ {
					k := rng.Intn(keys)
					if seen[k] {
						continue
					}
					seen[k] = true
					key := fmt.Sprintf("k%03d", k)
					val, err := txn.Get(tbl, []byte(key))
					if err != nil {
						ok = false
						break
					}
					ver, _ := strconv.ParseUint(string(val), 10, 64)
					ops = append(ops, histcheck.Op{Key: key, Version: ver})
					if rng.Bool(0.5) {
						next := strconv.FormatUint(ver+1, 10)
						if err := txn.Update(tbl, []byte(key), []byte(next)); err != nil {
							ok = false
							break
						}
						ops = append(ops, histcheck.Op{Key: key, Version: ver + 1, Write: true})
					}
				}
				if !ok {
					txn.Abort()
					continue
				}
				if err := txn.Commit(); err == nil {
					h.Record(ops)
				}
			}
		}(w)
	}
	wg.Wait()
	return h
}

func TestSSNRandomHistorySerializable(t *testing.T) {
	db := testDB(t, true)
	h := runRandomHistory(t, db, 8, 400, 12)
	if h.Len() < 100 {
		t.Fatalf("only %d commits; workload too contended to be meaningful", h.Len())
	}
	if c := h.FindCycle(); c != nil {
		t.Fatalf("ERMIA-SSN produced a dependency cycle: %s", histcheck.Describe(c))
	}
	t.Logf("ERMIA-SSN: %d committed txns, acyclic", h.Len())
}

func TestSiloRandomHistorySerializable(t *testing.T) {
	db, err := silo.Open(silo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	h := runRandomHistory(t, db, 8, 400, 12)
	if h.Len() < 100 {
		t.Fatalf("only %d commits", h.Len())
	}
	if c := h.FindCycle(); c != nil {
		t.Fatalf("Silo-OCC produced a dependency cycle: %s", histcheck.Describe(c))
	}
	t.Logf("Silo-OCC: %d committed txns, acyclic", h.Len())
}

// Plain SI permits write skew; the checker should (usually) catch a cycle
// when we aim the workload at it. This documents the anomaly rather than
// asserting it, since the interleaving is scheduler-dependent.
func TestSIRandomHistoryMayCycle(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("h")
	h := histcheck.New()

	seed := db.Begin(0)
	seed.Insert(tbl, []byte("a"), []byte("1"))
	seed.Insert(tbl, []byte("b"), []byte("1"))
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	h.Record([]histcheck.Op{{Key: "a", Version: 1, Write: true}, {Key: "b", Version: 1, Write: true}})

	// Orchestrated write skew (the guaranteed interleaving).
	t1 := db.Begin(0)
	t2 := db.Begin(1)
	ra1, _ := t1.Get(tbl, []byte("a"))
	rb1, _ := t1.Get(tbl, []byte("b"))
	ra2, _ := t2.Get(tbl, []byte("a"))
	rb2, _ := t2.Get(tbl, []byte("b"))
	va1, _ := strconv.ParseUint(string(ra1), 10, 64)
	vb1, _ := strconv.ParseUint(string(rb1), 10, 64)
	va2, _ := strconv.ParseUint(string(ra2), 10, 64)
	vb2, _ := strconv.ParseUint(string(rb2), 10, 64)
	if err := t1.Update(tbl, []byte("a"), []byte(strconv.FormatUint(va1+1, 10))); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(tbl, []byte("b"), []byte(strconv.FormatUint(vb2+1, 10))); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	h.Record([]histcheck.Op{
		{Key: "a", Version: va1}, {Key: "b", Version: vb1},
		{Key: "a", Version: va1 + 1, Write: true},
	})
	h.Record([]histcheck.Op{
		{Key: "a", Version: va2}, {Key: "b", Version: vb2},
		{Key: "b", Version: vb2 + 1, Write: true},
	})

	c := h.FindCycle()
	if c == nil {
		t.Fatal("orchestrated write skew under plain SI should produce a cycle")
	}
	t.Logf("plain SI write skew cycle (expected): %s", histcheck.Describe(c))
}

// Heavier SSN soak with scans mixed in, run against the serializable engine
// with tiny log segments so segment rotation happens mid-workload.
func TestSSNSoakWithRotationAndGC(t *testing.T) {
	db, err := Open(Config{
		WAL:          wal.Config{SegmentSize: 16 << 10, BufferSize: 8 << 10},
		Serializable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	h := runRandomHistory(t, db, 6, 300, 8)
	db.RunGC()
	if c := h.FindCycle(); c != nil {
		t.Fatalf("cycle under rotation+GC: %s", histcheck.Describe(c))
	}
	t.Logf("soak: %d commits, %d serial aborts, %d ww aborts, %d pruned",
		h.Len(), db.Stats().SerialAborts.Load(), db.Stats().WWAborts.Load(),
		db.Stats().VersionsPruned.Load())
}
