package core

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"ermia/internal/engine"
	"ermia/internal/index"
	"ermia/internal/mvcc"
	"ermia/internal/wal"
)

// SecondaryIndex is an ERMIA-native secondary access path: it maps
// secondary keys directly to OIDs in the table's indirection array (§2,
// "Latch-free indirection arrays"). Because indexes store the logical
// address rather than a physical pointer or a primary key, updates to a
// record touch neither the primary nor any secondary index — the
// indirection array absorbs them — and secondary lookups reach the version
// chain without the extra primary-index probe that key-mapping designs pay.
//
// Secondary keys are immutable for the life of a record: an update that
// changes the attribute a secondary index covers must delete and reinsert
// the record. (The alternative — multi-versioned index entries — is the
// part of the design space the paper leaves to the index.)
type SecondaryIndex struct {
	name string
	id   uint32
	tbl  *Table
	idx  *index.Tree[mvcc.OID]
}

// Name returns the index name.
func (s *SecondaryIndex) Name() string { return s.name }

// Table returns the indexed table.
func (s *SecondaryIndex) Table() *Table { return s.tbl }

// Len returns the number of secondary entries.
func (s *SecondaryIndex) Len() int { return s.idx.Len() }

// secondaryCatalog tracks a DB's secondary indexes (guarded by DB.mu).
type secondaryCatalog struct {
	byName map[string]*SecondaryIndex
	byID   map[uint32]*SecondaryIndex
	nextID atomic.Uint32
}

func newSecondaryCatalog() *secondaryCatalog {
	c := &secondaryCatalog{
		byName: make(map[string]*SecondaryIndex),
		byID:   make(map[uint32]*SecondaryIndex),
	}
	c.nextID.Store(1)
	return c
}

// CreateSecondaryIndex makes (or returns) a named secondary index over t.
// Creation is logged so recovery rebuilds the catalog; entries themselves
// are rebuilt from the logged insert records.
func (db *DB) CreateSecondaryIndex(t engine.Table, name string) *SecondaryIndex {
	if db.replica.Load() {
		// Catalog changes must come from the primary through the log.
		return db.OpenSecondaryIndex(name)
	}
	tab := t.(*Table)
	db.mu.Lock()
	if si, ok := db.secondaries.byName[name]; ok {
		db.mu.Unlock()
		return si
	}
	si := &SecondaryIndex{
		name: name,
		id:   db.secondaries.nextID.Add(1) - 1,
		tbl:  tab,
		idx:  index.New[mvcc.OID](),
	}
	db.secondaries.byName[name] = si
	db.secondaries.byID[si.id] = si
	db.mu.Unlock()

	rec := encodeCreateIndex(si.id, tab.id, name)
	res, err := db.logMgr().Reserve(len(rec), wal.BlockCommit)
	if err == nil {
		res.Append(rec)
		res.Commit()
	}
	return si
}

// OpenSecondaryIndex returns the named index, or nil.
func (db *DB) OpenSecondaryIndex(name string) *SecondaryIndex {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.secondaries.byName[name]
}

func (db *DB) secondaryByID(id uint32) *SecondaryIndex {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.secondaries.byID[id]
}

// createSecondaryRecovered rebuilds a secondary index during recovery.
func (db *DB) createSecondaryRecovered(id, tableID uint32, name string) *SecondaryIndex {
	tab := db.tableByID(tableID)
	if tab == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if si, ok := db.secondaries.byID[id]; ok {
		return si
	}
	si := &SecondaryIndex{name: name, id: id, tbl: tab, idx: index.New[mvcc.OID]()}
	db.secondaries.byName[name] = si
	db.secondaries.byID[id] = si
	if next := db.secondaries.nextID.Load(); id >= next {
		db.secondaries.nextID.Store(id + 1)
	}
	return si
}

// SecondaryEntry names one secondary key for an insert.
type SecondaryEntry struct {
	Index *SecondaryIndex
	Key   []byte
}

// InsertWithSecondary inserts a record and registers it under each
// secondary key. The secondary entries point at the same OID, so later
// updates to the record touch no index at all.
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) InsertWithSecondary(tbl engine.Table, key, value []byte, secondary []SecondaryEntry) error {
	tab := t.table(tbl)
	for _, se := range secondary {
		if se.Index.tbl != tab {
			return fmt.Errorf("core: secondary index %q covers table %q, not %q",
				se.Index.name, se.Index.tbl.name, tab.name)
		}
	}
	if err := t.Insert(tbl, key, value); err != nil {
		return err
	}
	// The insert's write entry carries the OID (fresh or reused). lastWrite,
	// not the final element: a re-insert of a key this transaction deleted
	// coalesces into its existing write entry instead of appending.
	w := &t.writes[t.lastWrite]
	for _, se := range secondary {
		is := t.clock()
		existing, inserted, before, after := se.Index.idx.InsertH(se.Key, w.oid)
		t.accIndex(is)
		if t.ssn {
			t.refreshNode(before, after)
		}
		if !inserted && existing != w.oid {
			// The secondary key is already bound to a different record.
			// Reject if that record is visibly alive.
			if v, _ := t.readVisible(tab.arr, existing); v != nil && !v.Tombstone {
				return engine.ErrDuplicate
			}
			// Dead binding: secondary keys are expected unique per live
			// record; rebind by leaving both entries — readers resolve
			// through visibility. (GC of stale entries is future work, as
			// in the paper.)
		}
		w.sec = append(w.sec, loggedSecondary{index: se.Index.id, key: cloneKey(se.Key)})
	}
	return nil
}

// GetBySecondary reads the record bound to skey through the secondary
// index: one tree probe, then straight to the version chain — no primary
// probe.
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) GetBySecondary(si *SecondaryIndex, skey []byte) ([]byte, error) {
	if t.done {
		return nil, engine.ErrAborted
	}
	is := t.clock()
	oid, ok, h := si.idx.GetH(skey)
	t.accIndex(is)
	t.addNode(h)
	if !ok {
		return nil, engine.ErrNotFound
	}
	v, cstamp := t.readVisible(si.tbl.arr, oid)
	if v == nil {
		return nil, engine.ErrNotFound
	}
	if err := t.ssnRead(v, cstamp); err != nil {
		return nil, err
	}
	t.rvTrack(si.tbl.arr, oid, v, cstamp)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// ScanSecondary visits records with secondary keys in [lo, hi) in secondary
// order.
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) ScanSecondary(si *SecondaryIndex, lo, hi []byte, fn func(skey, value []byte) bool) error {
	if t.done {
		return engine.ErrAborted
	}
	var err error
	onLeaf := func(h index.Handle[mvcc.OID]) { t.addNode(h) }
	if t.mode == SnapshotIsolation {
		onLeaf = nil
	}
	si.idx.Scan(lo, hi, onLeaf, func(skey []byte, oid mvcc.OID) bool {
		v, cstamp := t.readVisible(si.tbl.arr, oid)
		if v == nil {
			return true
		}
		if err = t.ssnRead(v, cstamp); err != nil {
			return false
		}
		t.rvTrack(si.tbl.arr, oid, v, cstamp)
		if v.Tombstone {
			return true
		}
		return fn(skey, v.Data)
	})
	return err
}

// loggedSecondary is one secondary binding carried in a write entry for
// logging.
type loggedSecondary struct {
	index uint32
	key   []byte
}

// ---- log records ----

// recCreateIndex and recInsertSec extend the base record set.
const (
	recCreateIndex uint8 = 16 + iota
	recInsertSec
)

func encodeCreateIndex(id, tableID uint32, name string) []byte {
	buf := make([]byte, 0, 11+len(name))
	buf = append(buf, recCreateIndex)
	buf = binary.LittleEndian.AppendUint32(buf, id)
	buf = binary.LittleEndian.AppendUint32(buf, tableID)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	return buf
}

// appendInsertSec encodes an insert with its secondary bindings:
// [kind][table][oid][klen][key][vlen][val][n u8]{[idx u32][sklen u32][skey]}.
func appendInsertSec(buf []byte, table uint32, oid uint64, key, val []byte, sec []loggedSecondary) []byte {
	buf = append(buf, recInsertSec)
	buf = binary.LittleEndian.AppendUint32(buf, table)
	buf = binary.LittleEndian.AppendUint64(buf, oid)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, val...)
	buf = append(buf, byte(len(sec)))
	for _, s := range sec {
		buf = binary.LittleEndian.AppendUint32(buf, s.index)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.key)))
		buf = append(buf, s.key...)
	}
	return buf
}
