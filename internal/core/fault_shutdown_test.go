package core

import (
	"errors"
	"testing"
	"time"

	"ermia/internal/faultfs"
	"ermia/internal/wal"
)

// TestCloseAfterFlusherError: when the storage layer starts failing under a
// running engine, Close must still return promptly (no goroutine waits on a
// flush that can never succeed), surface the injected error, and stop the
// background GC goroutine.
func TestCloseAfterFlusherError(t *testing.T) {
	inj := faultfs.NewInjector(wal.NewMemStorage(), faultfs.Plan{})
	db, err := Open(Config{
		WAL:        wal.Config{SegmentSize: 16 << 10, BufferSize: 8 << 10, Storage: inj},
		GCInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	put(t, db, tbl, "before", "failure")
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}

	// Every storage operation from here on fails.
	inj.SetFailOp(inj.OpCount() + 1)
	put(t, db, tbl, "after", "failure")

	// The flusher hits the error on its next write; WaitDurable must not
	// hang waiting for durability that can never arrive.
	waitErr := make(chan error, 1)
	go func() { waitErr <- db.WaitDurable() }()
	select {
	case err := <-waitErr:
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("WaitDurable after failure = %v, want ErrInjected", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitDurable hung on a dead flusher")
	}

	closeErr := make(chan error, 1)
	go func() { closeErr <- db.Close() }()
	select {
	case err := <-closeErr:
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("Close after flusher error = %v, want ErrInjected", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after flusher error")
	}

	// The GC goroutine must have exited with Close.
	if db.gcDone != nil {
		select {
		case <-db.gcDone:
		case <-time.After(10 * time.Second):
			t.Fatal("GC goroutine still running after Close")
		}
	}

	// Close is idempotent and keeps returning the same error.
	if err := db.Close(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("second Close = %v, want ErrInjected", err)
	}
}
