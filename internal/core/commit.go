package core

import (
	"runtime"

	"ermia/internal/engine"
	"ermia/internal/mvcc"
	"ermia/internal/txnid"
	"ermia/internal/wal"
)

// Commit runs pre-commit and post-commit (§3.1, §3.6). Pre-commit obtains
// the commit LSN with one fetch-and-add, runs the CC commit protocol (SSN's
// Algorithm 1 when serializable), copies the private log records into the
// reserved central-buffer space, and flips the state to committed — the
// point at which all updates become atomically visible. Post-commit
// replaces TID stamps in the write set with the commit LSN and releases
// resources.
//
// On a conflict error the transaction has already been aborted.
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) Commit() error {
	if t.done {
		return engine.ErrAborted
	}
	if len(t.writes) == 0 {
		// Read-only: nothing to log or install. Serializable modes still
		// validate — a read-only transaction can close a cycle.
		var err error
		switch t.mode {
		case SSN:
			err = t.ssnReadOnlyCommit()
		case ReadValidation:
			err = t.rvCommit()
		}
		if err != nil {
			t.Abort()
			return err
		}
		t.finish(true)
		return nil
	}

	// Encode the write set into the private buffer (unless per-op logging
	// already shipped the records, in which case the commit block is just
	// the anchor of the chain).
	t.logBuf = t.logBuf[:0]
	if !t.db.cfg.LogPerOperation {
		for i := range t.writes {
			t.logBuf = t.encodeWrite(t.logBuf, &t.writes[i])
			if len(t.logBuf) > t.db.logMgr().MaxPayload()-512 {
				// Oversized footprint: spill into a backward-linked
				// overflow block (§3.3, feature 4).
				if err := t.spillOverflow(); err != nil {
					t.Abort()
					return err
				}
			}
		}
	}

	// Single global synchronization point: commit LSN + log space. The gate
	// stays read-locked until the reservation is finished (Commit or Abort)
	// so a concurrent Reattach never observes a half-filled claim.
	ls := t.clock()
	t.db.logGate.RLock()
	res, err := t.db.logMgr().Reserve(len(t.logBuf), wal.BlockCommit)
	t.accLog(ls)
	if err != nil {
		t.db.logGate.RUnlock()
		t.Abort()
		return t.db.updateUnavailable(err)
	}
	cstamp := res.Offset()
	t.db.tids.SetCommitting(t.tid, cstamp)

	switch t.mode {
	case SSN:
		if err := t.ssnCommit(cstamp); err != nil {
			res.Abort() // the claimed space becomes a skip record
			t.db.logGate.RUnlock()
			t.Abort()
			return err
		}
	case ReadValidation:
		if err := t.rvCommit(); err != nil {
			res.Abort()
			t.db.logGate.RUnlock()
			t.Abort()
			return err
		}
	}

	// Populate the reserved space and commit the block.
	ls = t.clock()
	res.SetPrev(t.opChain)
	res.Append(t.logBuf)
	res.Commit()
	t.db.logGate.RUnlock()
	t.accLog(ls)

	t.db.tids.SetCommitted(t.tid)

	// Post-commit: replace TID stamps with the commit LSN so readers check
	// visibility without chasing our context.
	ps := t.clock()
	for i := range t.writes {
		w := &t.writes[i]
		w.newV.MaxPstamp(cstamp) // new version: cstamp = pstamp = t.cstamp
		if t.ssn && w.prev != nil {
			w.prev.SetSstamp(t.sstamp) // final π(V) for the overwritten version
		}
		w.newV.SetCLSN(cstamp)
	}
	t.accIndirect(ps)

	t.finish(true)
	return nil
}

// ssnCommit is SSN's commit protocol (Algorithm 1) with the parallel
// coordination the implementation needs: overwritten versions are tagged
// with our TID so concurrent committers chase our context, and committing
// readers with smaller commit stamps are waited out so their η updates are
// seen.
func (t *Txn) ssnCommit(cstamp uint64) error {
	// Phantom protection: validate the node set after entering pre-commit.
	for _, h := range t.nodeSet {
		if !h.Valid() {
			t.db.stats.PhantomAborts.Add(1)
			return engine.ErrPhantom
		}
	}

	// Tag overwritten versions so concurrent readers account the edge.
	for i := range t.writes {
		if p := t.writes[i].prev; p != nil {
			p.SetSstamp(mvcc.TIDStamp(t.tid))
		}
	}

	// Finalize η(T): latest committed reader/creator among overwritten
	// versions. Readers still committing with smaller stamps must finish
	// first — they publish their η updates before flipping to committed.
	for i := range t.writes {
		p := t.writes[i].prev
		if p == nil {
			continue
		}
		t.waitReaders(p, cstamp)
		if ps := p.Pstamp(); ps > t.pstamp {
			t.pstamp = ps
		}
	}

	// Finalize π(T): earliest committed successor among read versions.
	if cstamp < t.sstamp {
		t.sstamp = cstamp
	}
	for _, v := range t.reads {
		if ss := t.resolveSstamp(v, cstamp); ss < t.sstamp {
			t.sstamp = ss
		}
	}

	// The exclusion window test: a predecessor may not also be a successor.
	if t.sstamp <= t.pstamp {
		t.db.stats.SerialAborts.Add(1)
		return engine.ErrSerialization
	}

	// Commit is now certain. Publish η(V) for reads before the status
	// flips so overwriters that waited on us observe the update.
	for _, v := range t.reads {
		v.MaxPstamp(cstamp)
	}
	return nil
}

// ssnReadOnlyCommit runs the exclusion test for a transaction with no
// writes; η(T) came entirely from forward processing. The pseudo commit
// stamp sits just below the begin-stamp clock (the log's current offset, or
// the replay watermark on a replica) so it can never collide with a real
// writer's stamp: a writer reserving now gets exactly CurrentOffset, and the
// reader genuinely serializes before it (it cannot have seen that writer's
// versions).
func (t *Txn) ssnReadOnlyCommit() error {
	cstamp := t.db.beginStamp() - 1
	if cstamp < t.sstamp {
		t.sstamp = cstamp
	}
	for _, v := range t.reads {
		if ss := t.resolveSstamp(v, cstamp); ss < t.sstamp {
			t.sstamp = ss
		}
	}
	if t.sstamp <= t.pstamp {
		t.db.stats.SerialAborts.Add(1)
		return engine.ErrSerialization
	}
	for _, v := range t.reads {
		v.MaxPstamp(cstamp)
	}
	return nil
}

// waitReaders blocks until every in-flight reader of v that entered
// pre-commit with a stamp before cstamp has resolved, so its η(V) update is
// visible to us.
func (t *Txn) waitReaders(v *mvcc.Version, cstamp uint64) {
	v.Readers(func(slot int) {
		if slot == t.worker {
			return
		}
		for {
			raw := t.db.workerTID[slot].Load()
			if raw == 0 {
				return
			}
			status, rc, ok := t.db.tids.Inquire(txnid.TID(raw))
			if !ok || status != txnid.StatusCommitting || rc >= cstamp {
				return
			}
			runtime.Gosched()
		}
	})
}

// spillOverflow ships the current private buffer as an overflow block,
// linked backward from the eventual commit block.
func (t *Txn) spillOverflow() error {
	ls := t.clock()
	defer t.accLog(ls)
	t.db.logGate.RLock()
	defer t.db.logGate.RUnlock()
	res, err := t.db.logMgr().Reserve(len(t.logBuf), wal.BlockOverflow)
	if err != nil {
		return t.db.updateUnavailable(err)
	}
	res.SetPrev(t.opChain)
	res.Append(t.logBuf)
	res.Commit()
	t.opChain = res.Offset()
	t.logBuf = t.logBuf[:0]
	return nil
}

// Abort rolls back: the write set is unlinked from the version chains,
// overwritten versions get their successor stamps restored, and resources
// return to their epoch managers. Safe to call on a transaction whose
// Commit already failed (Commit aborts internally first).
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish, which runs at the end of this call
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.db.tids.SetAborted(t.tid)
	for i := range t.writes {
		w := &t.writes[i]
		if w.prev != nil {
			w.prev.SetSstamp(mvcc.Infinity) // undo any pre-commit tag
		}
		next := w.newV.Next()
		if !w.tbl.arr.CASHead(w.oid, w.newV, next) {
			// Only this transaction may unlink its own uncommitted head;
			// a failure means it already did (duplicate entry), fine.
			continue
		}
	}
	// In per-op mode the already-shipped chain blocks are simply never
	// referenced by a commit block; recovery ignores them.
	t.finish(false)
}

// finish releases TID-table and epoch resources and clears reader marks.
func (t *Txn) finish(committed bool) {
	for _, v := range t.reads {
		v.ClearReader(t.worker)
	}
	t.db.workerTID[t.worker].Store(0)
	t.db.tids.Release(t.tid)
	ws := &t.db.workers[t.worker]
	ws.slot.Quiesce()
	ws.slot.Exit()
	if committed {
		ws.commits.Add(1)
		t.db.stats.Commits.Add(1)
	} else {
		ws.aborts.Add(1)
		t.db.stats.Aborts.Add(1)
	}
	t.done = true
}

var _ engine.Txn = (*Txn)(nil)
