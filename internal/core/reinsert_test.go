package core

import (
	"errors"
	"testing"

	"ermia/internal/engine"
	"ermia/internal/wal"
)

// Same-transaction write coalescing (delete and reinsert of one key collapse
// into a single write entry) must not change what reaches the log. Found by
// driving the public API against a crash image: the coalesced entry logged
// as a plain update, which recovers the value but silently drops the
// reinsert's new secondary bindings.

func reinsertConfig(st wal.Storage) Config {
	return Config{WAL: wal.Config{SegmentSize: 16 << 10, BufferSize: 8 << 10, Storage: st}}
}

// TestReinsertNewSecondaryKeySurvivesRecovery: delete a record and reinsert
// it under a different secondary key in one transaction (the sanctioned way
// to change an indexed attribute), then crash and recover. The new binding
// must resolve; recovery must not downgrade the reinsert to an update.
func TestReinsertNewSecondaryKeySurvivesRecovery(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(reinsertConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	si := db.CreateSecondaryIndex(tbl, "t-by-sk")

	txn := db.BeginTxn(0)
	if err := txn.InsertWithSecondary(tbl, []byte("k"), []byte("v1"),
		[]SecondaryEntry{{Index: si, Key: []byte("sk-old")}}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)

	txn = db.BeginTxn(0)
	if err := txn.Delete(tbl, []byte("k")); err != nil {
		t.Fatal(err)
	}
	// An unrelated insert in between, so the coalesced entry is not the last
	// element of the write set.
	if err := txn.Insert(tbl, []byte("other"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := txn.InsertWithSecondary(tbl, []byte("k"), []byte("v2"),
		[]SecondaryEntry{{Index: si, Key: []byte("sk-new")}}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Recover(reinsertConfig(st.Crash()))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	si2 := db2.OpenSecondaryIndex("t-by-sk")
	if si2 == nil {
		t.Fatal("secondary index not recovered")
	}
	txn2 := db2.BeginTxn(0)
	defer txn2.Abort()
	v, err := txn2.GetBySecondary(si2, []byte("sk-new"))
	if err != nil {
		t.Fatalf("new secondary key lost across recovery: %v", err)
	}
	if string(v) != "v2" {
		t.Fatalf("sk-new -> %q, want v2", v)
	}
}

// TestDeleteReinsertDeleteNetsToDelete: a delete / reinsert / delete chain
// over a record that was live before the transaction must recover as
// deleted — the coalesced insert-shaped entry cannot simply log nothing.
func TestDeleteReinsertDeleteNetsToDelete(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(reinsertConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	put(t, db, tbl, "k", "v1")

	txn := db.BeginTxn(0)
	if err := txn.Delete(tbl, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Insert(tbl, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Delete(tbl, []byte("k")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Recover(reinsertConfig(st.Crash()))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	txn2 := db2.BeginTxn(0)
	defer txn2.Abort()
	if _, err := txn2.Get(db2.OpenTable("t"), []byte("k")); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("deleted record resurrected by recovery: err=%v", err)
	}
}

// TestInsertDeleteNetsToNothing pins the existing behaviour the fix must
// not disturb: a fresh insert deleted in the same transaction leaves no
// record and no log-visible trace.
func TestInsertDeleteNetsToNothing(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(reinsertConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")

	txn := db.BeginTxn(0)
	if err := txn.Insert(tbl, []byte("ghost"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Delete(tbl, []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Recover(reinsertConfig(st.Crash()))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	txn2 := db2.BeginTxn(0)
	defer txn2.Abort()
	if _, err := txn2.Get(db2.OpenTable("t"), []byte("ghost")); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("insert-then-delete left a trace: err=%v", err)
	}
}
