package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"strings"

	"ermia/internal/engine"
	"ermia/internal/mvcc"
	"ermia/internal/txnid"
	"ermia/internal/wal"
)

// This file implements the consistent checkpointer (§3.7): a fuzzy-looking
// scan that is nevertheless transactionally consistent, because it reuses the
// engine's own visibility machinery inside a pinned SI snapshot instead of
// skipping in-flight versions.
//
// Protocol:
//
//  1. Pin the GC horizon by allocating a TID whose begin stamp is the current
//     log offset: MinActiveBegin now holds the horizon at or below the
//     snapshot for the whole scan, so Prune can never unlink the newest
//     version below the cut while the scan walks a chain.
//  2. Log the checkpoint-begin record under the exclusive side of logGate.
//     Every commit window (Reserve → SetCommitting → Commit) runs under the
//     read side, so when the write lock is granted every transaction whose
//     commit offset precedes the begin record has already published its
//     Committing status. That closes the reserved-but-still-Active race and
//     makes the begin offset a clean cut: the blob holds exactly the
//     committed state below it, replay covers everything above it.
//  3. Scan every table through ckptVisible — Txn.visible with the begin
//     offset as the snapshot — waiting out owners still in pre-commit below
//     the cut, and resolving TID stamps whose owners committed below the cut
//     to their real commit stamps.
//  4. Publish atomically: write the blob to name+".tmp", sync, then rename.
//     A crash anywhere in the window leaves either no blob or a complete
//     one, never a torn file under a live name.
//  5. Log the checkpoint-end record naming the blob. The blob header also
//     makes it self-describing, so recovery can adopt a published blob even
//     when the crash ate the end record.
//
// Writers never stall for the scan: the write lock is held only for the
// zero-payload begin reservation (microseconds), and the scan itself runs
// concurrently with commits.

// checkpointMagic opens a v2 checkpoint blob. A v1 blob starts with its
// table count, which can never reach this value in practice.
var checkpointMagic = [4]byte{'E', 'C', 'K', 'P'}

const (
	checkpointVersion    = 2
	checkpointHeaderSize = 4 + 2 + 2 + 8 + 8 // magic, version, reserved, gen, begin
	// checkpointKeep is how many published blobs survive cleanup: the newest
	// plus one predecessor, so recovery can fall back if the newest suffers
	// bit damage after publication.
	checkpointKeep = 2
)

// checkpointName formats a blob name so that lexicographic order equals
// begin-offset order, with the generation as a tie-free audit trail.
func checkpointName(begin, gen uint64) string {
	return fmt.Sprintf("ckpt-%016x-g%04x", begin, gen)
}

// parseCheckpointName recovers (begin, gen) from a blob name, accepting the
// pre-generation format ckpt-%016x from earlier logs (gen 0). The name must
// round-trip exactly, so a trailing ".tmp" never parses.
func parseCheckpointName(name string) (begin, gen uint64, ok bool) {
	if _, err := fmt.Sscanf(name, "ckpt-%016x-g%04x", &begin, &gen); err == nil &&
		checkpointName(begin, gen) == name {
		return begin, gen, true
	}
	if _, err := fmt.Sscanf(name, "ckpt-%016x", &begin); err == nil &&
		fmt.Sprintf("ckpt-%016x", begin) == name {
		return begin, 0, true
	}
	return 0, 0, false
}

// CheckpointInfo identifies a published checkpoint.
type CheckpointInfo struct {
	Name  string
	Gen   uint64
	Begin uint64 // begin-record offset; the blob holds all commits below it
}

// LastCheckpoint returns the newest published checkpoint (from this run or
// recovered from storage), or ok=false when none exists.
func (db *DB) LastCheckpoint() (CheckpointInfo, bool) {
	p := db.lastCkpt.Load()
	if p == nil {
		return CheckpointInfo{}, false
	}
	return *p, true
}

func (db *DB) setLastCheckpoint(ci CheckpointInfo) {
	db.lastCkpt.Store(&ci)
}

// Checkpoint takes a consistent snapshot of every table and secondary index
// and publishes it as a checkpoint blob in the log's storage. It runs
// concurrently with writers; see the protocol comment above.
func (db *DB) Checkpoint() error {
	if db.replica.Load() {
		// A replica checkpoints nothing: its durable state is the primary's
		// log, mirrored by the replication stream.
		return engine.ErrReplicaReadOnly
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	// Step 1: pin the GC horizon below the (upcoming) snapshot.
	pin, err := db.tids.Allocate(db.beginStamp)
	if err != nil {
		return err
	}
	defer db.tids.Release(pin)

	// Step 2: begin record under the exclusive gate — the commit-status
	// barrier that makes the cut clean.
	db.logGate.Lock()
	res, err := db.logMgr().Reserve(0, wal.BlockCheckpointBegin)
	if err != nil {
		db.logGate.Unlock()
		return db.noteLogErr(err)
	}
	res.Commit()
	db.logGate.Unlock()
	begin := res.Offset()
	gen := db.lastCkptGen() + 1
	name := checkpointName(begin, gen)

	// Step 3: the consistent scan. A blob I/O failure is a clean checkpoint
	// failure, not a degrade trigger: unlike log-manager errors it is not
	// sticky, the engine keeps running, and a later checkpoint can succeed.
	buf := appendCheckpointHeader(nil, gen, begin)
	buf, entries := db.encodeCheckpoint(buf, begin)
	buf = binary.LittleEndian.AppendUint32(buf, wal.Checksum(buf))

	// Step 4: atomic publication.
	if err := db.writeCheckpointBlob(name, buf); err != nil {
		return err
	}

	// Step 5: end record locates the durable snapshot.
	db.logGate.RLock()
	end, err := db.logMgr().Reserve(len(name), wal.BlockCheckpointEnd)
	if err != nil {
		db.logGate.RUnlock()
		return db.noteLogErr(err)
	}
	end.Append([]byte(name))
	end.Commit()
	db.logGate.RUnlock()

	db.setLastCheckpoint(CheckpointInfo{Name: name, Gen: gen, Begin: begin})
	db.stats.Checkpoints.Add(1)
	db.stats.CkptEntries.Store(entries)
	db.stats.CkptBytes.Store(uint64(len(buf)))
	db.cleanupCheckpoints(name)
	return nil
}

// lastCkptGen returns the generation of the newest checkpoint, 0 if none.
func (db *DB) lastCkptGen() uint64 {
	if ci, ok := db.LastCheckpoint(); ok {
		return ci.Gen
	}
	return 0
}

// appendCheckpointHeader appends the v2 blob header.
func appendCheckpointHeader(buf []byte, gen, begin uint64) []byte {
	buf = append(buf, checkpointMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, checkpointVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // reserved
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, begin)
	return buf
}

// parseCheckpointHeader splits a verified blob body into its metadata and
// v1-format payload. A body that does not open with the magic is a v1 blob:
// headerless, its begin offset known only from its name.
func parseCheckpointHeader(body []byte) (gen, begin uint64, payload []byte, v2 bool, err error) {
	if len(body) < 4 || string(body[:4]) != string(checkpointMagic[:]) {
		return 0, 0, body, false, nil
	}
	if len(body) < checkpointHeaderSize {
		return 0, 0, nil, false, fmt.Errorf("core: checkpoint header truncated")
	}
	if v := binary.LittleEndian.Uint16(body[4:]); v != checkpointVersion {
		return 0, 0, nil, false, fmt.Errorf("core: checkpoint version %d not supported", v)
	}
	gen = binary.LittleEndian.Uint64(body[8:])
	begin = binary.LittleEndian.Uint64(body[16:])
	return gen, begin, body[checkpointHeaderSize:], true, nil
}

// writeCheckpointBlob persists a checkpoint blob (content plus trailer)
// atomically: temp file → sync → rename. Under a crash the live name either
// does not exist yet or refers to the complete, synced image.
func (db *DB) writeCheckpointBlob(name string, buf []byte) error {
	st := db.cfg.WAL.Storage
	tmp := name + ".tmp"
	f, err := st.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: create checkpoint: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	if err := st.Rename(tmp, name); err != nil {
		return fmt.Errorf("core: publish checkpoint: %w", err)
	}
	return nil
}

// cleanupCheckpoints removes stale temp files and published blobs older than
// the retention window. Best-effort: a failure leaves garbage, never damage.
func (db *DB) cleanupCheckpoints(newest string) {
	st := db.cfg.WAL.Storage
	names, err := st.List()
	if err != nil {
		return
	}
	var published []string
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") && strings.HasPrefix(n, "ckpt-") && n != newest+".tmp" {
			st.Remove(n)
			continue
		}
		if _, _, ok := parseCheckpointName(n); ok {
			published = append(published, n)
		}
	}
	// List is sorted and the name format orders by begin offset, except that
	// legacy names (no -g suffix) sort before same-begin generational names —
	// close enough for retention.
	for len(published) > checkpointKeep {
		if published[0] == newest {
			break
		}
		st.Remove(published[0])
		published = published[1:]
	}
}

// ErrNoCheckpoint aliases the engine-level sentinel (where it lives so the
// wire layer can map it to a status without importing this package).
//
//ermia:classify fatal an admin/bootstrap precondition, not a transaction outcome; the caller falls back to full-log replication
var ErrNoCheckpoint = engine.ErrNoCheckpoint

// CheckpointChunk is one slice of a checkpoint image plus the metadata a
// replica needs to bootstrap from it. It aliases the engine-level type so
// *DB satisfies engine.Checkpointer.
type CheckpointChunk = engine.CheckpointChunk

// CheckpointChunk serves up to max bytes of the newest checkpoint image
// starting at byte offset off, for the CkptFetch wire frame. The image is
// the raw published file — header, payload, and FNV trailer — so the fetcher
// can store it byte-identical and verify it exactly as recovery would. The
// metadata rides on every chunk: a fetcher that observes the name change
// mid-transfer restarts against the newer image.
func (db *DB) CheckpointChunk(off uint64, max int) (CheckpointChunk, error) {
	ci, ok := db.LastCheckpoint()
	if !ok {
		return CheckpointChunk{}, ErrNoCheckpoint
	}
	log := db.logMgr()
	if log == nil {
		return CheckpointChunk{}, engine.ErrReplicaReadOnly
	}
	start := log.SegmentStartFor(ci.Begin)
	if start == 0 {
		// The segment holding the begin record is gone — possible only when
		// the blob outlived truncation bookkeeping across runs. Treat as no
		// usable checkpoint rather than handing out an unsubscribable seed.
		return CheckpointChunk{}, ErrNoCheckpoint
	}
	f, err := db.cfg.WAL.Storage.Open(ci.Name)
	if err != nil {
		return CheckpointChunk{}, fmt.Errorf("core: open checkpoint: %w", err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return CheckpointChunk{}, err
	}
	ck := CheckpointChunk{Name: ci.Name, Gen: ci.Gen, Begin: ci.Begin, Start: start, Total: uint64(size)}
	if off >= uint64(size) {
		return ck, nil // past the end: metadata only, empty chunk
	}
	n := uint64(size) - off
	if max > 0 && n > uint64(max) {
		n = uint64(max)
	}
	ck.Data = make([]byte, n)
	if _, err := f.ReadAt(ck.Data, int64(off)); err != nil && err != io.EOF {
		return CheckpointChunk{}, fmt.Errorf("core: read checkpoint: %w", err)
	}
	return ck, nil
}

// SeedCheckpoint loads a verified checkpoint image (raw file bytes, as
// served by CheckpointChunk) into the engine, persists it into the local
// storage under its canonical blob name — so a restart before catch-up
// recovers from the seed instead of an empty mirror — and returns its begin
// offset. The caller — the replica bootstrap path — must have quiesced the
// applier: loading shares applyVersion's single-applier contract. Loading
// over existing state is safe; see loadCheckpoint.
func (db *DB) SeedCheckpoint(image []byte) (uint64, error) {
	if len(image) < 4 {
		return 0, fmt.Errorf("core: checkpoint image truncated")
	}
	body := image[:len(image)-4]
	if got, want := wal.Checksum(body), binary.LittleEndian.Uint32(image[len(image)-4:]); got != want {
		return 0, fmt.Errorf("core: checkpoint image checksum mismatch: %#x != %#x", got, want)
	}
	gen, begin, payload, v2, err := parseCheckpointHeader(body)
	if err != nil {
		return 0, err
	}
	if !v2 {
		return 0, fmt.Errorf("core: checkpoint image has no header; cannot seed from a v1 blob")
	}
	name := checkpointName(begin, gen)
	if err := db.writeCheckpointBlob(name, image); err != nil {
		return 0, err
	}
	if err := db.loadCheckpoint(payload); err != nil {
		return 0, err
	}
	db.setLastCheckpoint(CheckpointInfo{Name: name, Gen: gen, Begin: begin})
	db.PublishWatermark(begin)
	return begin, nil
}

// TruncateLog frees log segments the newest checkpoint made redundant:
// recovery replays only blocks after the checkpoint-begin offset, so
// segments wholly before it carry no needed state. The checkpoint-end
// record is forced durable first — otherwise a crash between truncation and
// the end record's flush would leave neither the checkpoint nor the log
// prefix. Returns the removed segment file names.
func (db *DB) TruncateLog() ([]string, error) {
	ci, ok := db.LastCheckpoint()
	if !ok {
		return nil, nil // no checkpoint yet
	}
	log := db.logMgr()
	if err := log.Flush(); err != nil {
		return nil, err
	}
	removed, err := log.Truncate(ci.Begin)
	db.stats.SegmentsFreed.Add(uint64(len(removed)))
	return removed, err
}

// ckptVisible decides whether version v belongs to the checkpoint snapshot
// cut at the begin offset. It is Txn.visible without the own-write case: a
// TID-stamped version whose owner committed below the cut is included under
// its real commit stamp (the owner is mid post-commit), and owners still in
// pre-commit below the cut are waited out — the fix for the lost-commit race
// where a fuzzy scan and the replay each assumed the other would capture a
// transaction straddling the begin record.
func (db *DB) ckptVisible(v *mvcc.Version, cut uint64) (bool, uint64) {
	s := v.CLSN()
	for {
		if !mvcc.IsTID(s) {
			return s < cut, s
		}
		owner := mvcc.AsTID(s)
		status, cstamp, ok := db.tids.Inquire(owner)
		if !ok {
			// The owner released its TID. A committed owner rewrites every
			// write's stamp during post-commit, strictly before releasing, so
			// a stamp that still carries the TID can only belong to an aborted
			// transaction's unlinked version: invisible.
			s = v.CLSN()
			if mvcc.IsTID(s) && mvcc.AsTID(s) == owner {
				return false, 0
			}
			continue
		}
		switch status {
		case txnid.StatusActive:
			// The begin-record barrier guarantees its eventual commit stamp
			// postdates the cut.
			return false, 0
		case txnid.StatusCommitting:
			if cstamp >= cut {
				return false, 0
			}
			// Entered pre-commit below the cut: wait for the outcome,
			// otherwise the blob and the replay could both skip it.
			runtime.Gosched()
			s = v.CLSN()
		case txnid.StatusCommitted:
			return cstamp < cut, cstamp
		case txnid.StatusAborted:
			return false, 0
		default:
			s = v.CLSN()
		}
	}
}

// encodeCheckpoint serializes the catalogs, every table's records visible at
// the cut, and every secondary index's bindings. Returns the extended buffer
// and the number of main-table entries captured.
//
//ermia:guard-entry the scan holds a pinned TID whose begin stamp lower-bounds the GC horizon for its whole duration, so Prune can never unlink the newest version below the cut; versions unlinked above the cut stay reachable through held pointers
func (db *DB) encodeCheckpoint(buf []byte, cut uint64) ([]byte, uint64) {
	tables := db.allTables()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tables)))
	for _, t := range tables {
		buf = binary.LittleEndian.AppendUint32(buf, t.id)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.name)))
		buf = append(buf, t.name...)
	}
	db.mu.Lock()
	secs := make([]*SecondaryIndex, 0, len(db.secondaries.byID))
	for _, si := range db.secondaries.byID {
		secs = append(secs, si)
	}
	db.mu.Unlock()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(secs)))
	for _, si := range secs {
		buf = binary.LittleEndian.AppendUint32(buf, si.id)
		buf = binary.LittleEndian.AppendUint32(buf, si.tbl.id)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(si.name)))
		buf = append(buf, si.name...)
	}
	// Main entry count placeholder, patched after the scan.
	countAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	var nEntries uint64
	for _, t := range tables {
		t.idx.Scan(nil, nil, nil, func(key []byte, oid mvcc.OID) bool {
			// Newest version visible at the cut.
			v := t.arr.Head(oid)
			var clsn uint64
			for v != nil {
				ok, cs := db.ckptVisible(v, cut)
				if ok {
					clsn = cs
					break
				}
				v = v.Next()
			}
			if v == nil {
				return true // created after the cut, or an aborted insert
			}
			flags := uint8(0)
			if v.Tombstone {
				flags = 1
			}
			buf = binary.LittleEndian.AppendUint32(buf, t.id)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(oid))
			buf = append(buf, flags)
			buf = binary.LittleEndian.AppendUint64(buf, clsn)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
			buf = append(buf, key...)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Data)))
			buf = append(buf, v.Data...)
			nEntries++
			return true
		})
	}
	binary.LittleEndian.PutUint64(buf[countAt:], nEntries)
	// Secondary bindings: (index id, skey, oid) until end of blob.
	for _, si := range secs {
		si.idx.Scan(nil, nil, nil, func(skey []byte, oid mvcc.OID) bool {
			buf = binary.LittleEndian.AppendUint32(buf, si.id)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(oid))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(skey)))
			buf = append(buf, skey...)
			return true
		})
	}
	return buf, nEntries
}

// loadCheckpoint restores a checkpoint blob body (header already stripped by
// the caller for v2 blobs) into a DB. Loading into a non-empty DB is legal:
// applyVersion's apply-if-newer rule makes it idempotent, and tombstones are
// first-class entries, so a replica re-seeding from a newer checkpoint
// converges on the checkpoint state rather than resurrecting deleted keys.
func (db *DB) loadCheckpoint(buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("core: checkpoint truncated")
	}
	nTables := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	for i := uint32(0); i < nTables; i++ {
		if len(buf) < 6 {
			return fmt.Errorf("core: checkpoint catalog truncated")
		}
		id := binary.LittleEndian.Uint32(buf)
		nlen := int(binary.LittleEndian.Uint16(buf[4:]))
		buf = buf[6:]
		if len(buf) < nlen {
			return fmt.Errorf("core: checkpoint table name truncated")
		}
		db.createTableRecovered(id, string(buf[:nlen]))
		buf = buf[nlen:]
	}
	if len(buf) < 4 {
		return fmt.Errorf("core: checkpoint index catalog truncated")
	}
	nIdx := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	for i := uint32(0); i < nIdx; i++ {
		if len(buf) < 10 {
			return fmt.Errorf("core: checkpoint index entry truncated")
		}
		id := binary.LittleEndian.Uint32(buf)
		tableID := binary.LittleEndian.Uint32(buf[4:])
		nlen := int(binary.LittleEndian.Uint16(buf[8:]))
		buf = buf[10:]
		if len(buf) < nlen {
			return fmt.Errorf("core: checkpoint index name truncated")
		}
		if db.createSecondaryRecovered(id, tableID, string(buf[:nlen])) == nil {
			return fmt.Errorf("core: checkpoint index references unknown table %d", tableID)
		}
		buf = buf[nlen:]
	}
	if len(buf) < 8 {
		return fmt.Errorf("core: checkpoint entry count truncated")
	}
	nEntries := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	for e := uint64(0); e < nEntries; e++ {
		if len(buf) < 25 {
			return fmt.Errorf("core: checkpoint entry truncated")
		}
		id := binary.LittleEndian.Uint32(buf)
		oid := mvcc.OID(binary.LittleEndian.Uint64(buf[4:]))
		flags := buf[12]
		clsn := binary.LittleEndian.Uint64(buf[13:])
		klen := int(binary.LittleEndian.Uint32(buf[21:]))
		buf = buf[25:]
		if len(buf) < klen+4 {
			return fmt.Errorf("core: checkpoint key truncated")
		}
		key := append([]byte(nil), buf[:klen]...)
		vlen := int(binary.LittleEndian.Uint32(buf[klen:]))
		buf = buf[klen+4:]
		if len(buf) < vlen {
			return fmt.Errorf("core: checkpoint value truncated")
		}
		val := append([]byte(nil), buf[:vlen]...)
		buf = buf[vlen:]

		if !mvcc.ValidOID(oid) {
			return fmt.Errorf("core: checkpoint entry with invalid OID %d", oid)
		}
		if mvcc.IsTID(clsn) {
			return fmt.Errorf("core: checkpoint entry with TID stamp %#x", clsn)
		}
		t := db.tableByID(id)
		if t == nil {
			return fmt.Errorf("core: checkpoint entry for unknown table %d", id)
		}
		db.applyVersion(t, oid, key, val, clsn, flags == 1, true)
	}
	// Secondary bindings run to the end of the blob.
	for len(buf) > 0 {
		if len(buf) < 16 {
			return fmt.Errorf("core: checkpoint secondary entry truncated")
		}
		id := binary.LittleEndian.Uint32(buf)
		oid := mvcc.OID(binary.LittleEndian.Uint64(buf[4:]))
		sklen := int(binary.LittleEndian.Uint32(buf[12:]))
		buf = buf[16:]
		if len(buf) < sklen {
			return fmt.Errorf("core: checkpoint secondary key truncated")
		}
		if !mvcc.ValidOID(oid) {
			return fmt.Errorf("core: checkpoint binding with invalid OID %d", oid)
		}
		si := db.secondaryByID(id)
		if si == nil {
			return fmt.Errorf("core: checkpoint binding for unknown index %d", id)
		}
		si.idx.InsertIfAbsent(append([]byte(nil), buf[:sklen]...), oid)
		buf = buf[sklen:]
	}
	return nil
}

// applyVersion installs a recovered or replicated version at oid if it is
// newer than what the slot already holds; withKey also (re)binds key → oid
// in the index.
//
// There is never more than one applier: recovery is single-threaded, and a
// replica has exactly one applier goroutine. Concurrent replica readers are
// safe against the Install publication (the version is fully built first),
// and the replica runs GC only from the applier goroutine itself, so an
// installed version can never race a concurrent prune.
//
//ermia:guard-entry single-threaded applier: recovery runs before Open returns, and the replica applier is one goroutine that also owns GC, so no concurrent sweep can reclaim under it
func (db *DB) applyVersion(t *Table, oid mvcc.OID, key, val []byte, clsn uint64, tombstone, withKey bool) {
	t.arr.EnsureAllocated(oid)
	if withKey && len(key) > 0 {
		t.idx.InsertIfAbsent(key, oid)
	}
	head := t.arr.Head(oid)
	if head != nil && head.CLSN() >= clsn {
		return // checkpoint or earlier replay already delivered it
	}
	v := mvcc.NewVersion(val, clsn, tombstone)
	v.MaxPstamp(clsn)
	v.SetNext(head)
	t.arr.Install(oid, v)
}
