package core

import (
	"encoding/binary"
	"fmt"

	"ermia/internal/engine"
	"ermia/internal/mvcc"
	"ermia/internal/wal"
)

// Checkpoint takes a fuzzy snapshot of the OID arrays (§3.7): it logs a
// checkpoint-begin record, dumps every table's live (key, OID, newest
// committed version) to a checkpoint blob in the log's storage, and logs a
// checkpoint-end record naming the blob once it is durable. Recovery
// restores the snapshot and rolls forward from the begin offset; entries
// copied non-atomically after the begin record are deduplicated by the
// replay's apply-if-newer rule.
//
// The blob name encodes the begin offset, playing the role of the paper's
// checkpoint marker file. The blob carries an FNV-1a trailer (the block
// headers' checksum scheme) so recovery can detect a torn or bit-flipped
// snapshot and fall back to the previous checkpoint.
func (db *DB) Checkpoint() error {
	if db.replica.Load() {
		// A replica checkpoints nothing: its durable state is the primary's
		// log, mirrored by the replication stream.
		return engine.ErrReplicaReadOnly
	}
	// Begin record.
	db.logGate.RLock()
	res, err := db.logMgr().Reserve(0, wal.BlockCheckpointBegin)
	if err != nil {
		db.logGate.RUnlock()
		return db.noteLogErr(err)
	}
	res.Commit()
	db.logGate.RUnlock()
	beginOff := res.Offset()
	name := fmt.Sprintf("ckpt-%016x", beginOff)

	// A blob I/O failure is a clean checkpoint failure, not a degrade
	// trigger: unlike log-manager errors it is not sticky, the engine keeps
	// running, and a later checkpoint can succeed.
	buf := db.encodeCheckpoint(nil)
	buf = binary.LittleEndian.AppendUint32(buf, wal.Checksum(buf))
	if err := db.writeCheckpointBlob(name, buf); err != nil {
		return err
	}

	// End record locates the durable snapshot.
	db.logGate.RLock()
	end, err := db.logMgr().Reserve(len(name), wal.BlockCheckpointEnd)
	if err != nil {
		db.logGate.RUnlock()
		return db.noteLogErr(err)
	}
	end.Append([]byte(name))
	end.Commit()
	db.logGate.RUnlock()
	db.lastCkptBegin.Store(beginOff)
	return nil
}

// writeCheckpointBlob persists a checkpoint blob (content plus trailer).
func (db *DB) writeCheckpointBlob(name string, buf []byte) error {
	f, err := db.cfg.WAL.Storage.Create(name)
	if err != nil {
		return fmt.Errorf("core: create checkpoint: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	return nil
}

// TruncateLog frees log segments the newest checkpoint made redundant:
// recovery replays only blocks after the checkpoint-begin offset, so
// segments wholly before it carry no needed state. The checkpoint-end
// record is forced durable first — otherwise a crash between truncation and
// the end record's flush would leave neither the checkpoint nor the log
// prefix. Returns the removed segment file names.
func (db *DB) TruncateLog() ([]string, error) {
	begin := db.lastCkptBegin.Load()
	if begin == 0 {
		return nil, nil // no checkpoint this run
	}
	log := db.logMgr()
	if err := log.Flush(); err != nil {
		return nil, err
	}
	return log.Truncate(begin)
}

// encodeCheckpoint serializes the catalogs, every table's live records, and
// every secondary index's bindings.
//
//ermia:guard-entry the fuzzy scan tolerates concurrent pruning: a version unlinked mid-walk stays reachable through the held pointer, and replay's apply-if-newer rule deduplicates whatever skew the scan captured
func (db *DB) encodeCheckpoint(buf []byte) []byte {
	tables := db.allTables()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tables)))
	for _, t := range tables {
		buf = binary.LittleEndian.AppendUint32(buf, t.id)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.name)))
		buf = append(buf, t.name...)
	}
	db.mu.Lock()
	secs := make([]*SecondaryIndex, 0, len(db.secondaries.byID))
	for _, si := range db.secondaries.byID {
		secs = append(secs, si)
	}
	db.mu.Unlock()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(secs)))
	for _, si := range secs {
		buf = binary.LittleEndian.AppendUint32(buf, si.id)
		buf = binary.LittleEndian.AppendUint32(buf, si.tbl.id)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(si.name)))
		buf = append(buf, si.name...)
	}
	// Main entry count placeholder, patched after the scan.
	countAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	var nEntries uint64
	for _, t := range tables {
		t.idx.Scan(nil, nil, nil, func(key []byte, oid mvcc.OID) bool {
			// Newest committed version: skip TID-stamped in-flight heads.
			v := t.arr.Head(oid)
			for v != nil && mvcc.IsTID(v.CLSN()) {
				v = v.Next()
			}
			if v == nil {
				return true // dangling entry from an aborted insert
			}
			flags := uint8(0)
			if v.Tombstone {
				flags = 1
			}
			buf = binary.LittleEndian.AppendUint32(buf, t.id)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(oid))
			buf = append(buf, flags)
			buf = binary.LittleEndian.AppendUint64(buf, v.CLSN())
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
			buf = append(buf, key...)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Data)))
			buf = append(buf, v.Data...)
			nEntries++
			return true
		})
	}
	binary.LittleEndian.PutUint64(buf[countAt:], nEntries)
	// Secondary bindings: (index id, skey, oid) until end of blob.
	for _, si := range secs {
		si.idx.Scan(nil, nil, nil, func(skey []byte, oid mvcc.OID) bool {
			buf = binary.LittleEndian.AppendUint32(buf, si.id)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(oid))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(skey)))
			buf = append(buf, skey...)
			return true
		})
	}
	return buf
}

// loadCheckpoint restores a checkpoint blob into an empty DB.
func (db *DB) loadCheckpoint(buf []byte) error {
	if len(buf) < 4 {
		return fmt.Errorf("core: checkpoint truncated")
	}
	nTables := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	for i := uint32(0); i < nTables; i++ {
		if len(buf) < 6 {
			return fmt.Errorf("core: checkpoint catalog truncated")
		}
		id := binary.LittleEndian.Uint32(buf)
		nlen := int(binary.LittleEndian.Uint16(buf[4:]))
		buf = buf[6:]
		if len(buf) < nlen {
			return fmt.Errorf("core: checkpoint table name truncated")
		}
		db.createTableRecovered(id, string(buf[:nlen]))
		buf = buf[nlen:]
	}
	if len(buf) < 4 {
		return fmt.Errorf("core: checkpoint index catalog truncated")
	}
	nIdx := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	for i := uint32(0); i < nIdx; i++ {
		if len(buf) < 10 {
			return fmt.Errorf("core: checkpoint index entry truncated")
		}
		id := binary.LittleEndian.Uint32(buf)
		tableID := binary.LittleEndian.Uint32(buf[4:])
		nlen := int(binary.LittleEndian.Uint16(buf[8:]))
		buf = buf[10:]
		if len(buf) < nlen {
			return fmt.Errorf("core: checkpoint index name truncated")
		}
		if db.createSecondaryRecovered(id, tableID, string(buf[:nlen])) == nil {
			return fmt.Errorf("core: checkpoint index references unknown table %d", tableID)
		}
		buf = buf[nlen:]
	}
	if len(buf) < 8 {
		return fmt.Errorf("core: checkpoint entry count truncated")
	}
	nEntries := binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	for e := uint64(0); e < nEntries; e++ {
		if len(buf) < 25 {
			return fmt.Errorf("core: checkpoint entry truncated")
		}
		id := binary.LittleEndian.Uint32(buf)
		oid := mvcc.OID(binary.LittleEndian.Uint64(buf[4:]))
		flags := buf[12]
		clsn := binary.LittleEndian.Uint64(buf[13:])
		klen := int(binary.LittleEndian.Uint32(buf[21:]))
		buf = buf[25:]
		if len(buf) < klen+4 {
			return fmt.Errorf("core: checkpoint key truncated")
		}
		key := append([]byte(nil), buf[:klen]...)
		vlen := int(binary.LittleEndian.Uint32(buf[klen:]))
		buf = buf[klen+4:]
		if len(buf) < vlen {
			return fmt.Errorf("core: checkpoint value truncated")
		}
		val := append([]byte(nil), buf[:vlen]...)
		buf = buf[vlen:]

		t := db.tableByID(id)
		if t == nil {
			return fmt.Errorf("core: checkpoint entry for unknown table %d", id)
		}
		db.applyVersion(t, oid, key, val, clsn, flags == 1, true)
	}
	// Secondary bindings run to the end of the blob.
	for len(buf) > 0 {
		if len(buf) < 16 {
			return fmt.Errorf("core: checkpoint secondary entry truncated")
		}
		id := binary.LittleEndian.Uint32(buf)
		oid := mvcc.OID(binary.LittleEndian.Uint64(buf[4:]))
		sklen := int(binary.LittleEndian.Uint32(buf[12:]))
		buf = buf[16:]
		if len(buf) < sklen {
			return fmt.Errorf("core: checkpoint secondary key truncated")
		}
		si := db.secondaryByID(id)
		if si == nil {
			return fmt.Errorf("core: checkpoint binding for unknown index %d", id)
		}
		si.idx.InsertIfAbsent(append([]byte(nil), buf[:sklen]...), oid)
		buf = buf[sklen:]
	}
	return nil
}

// applyVersion installs a recovered or replicated version at oid if it is
// newer than what the slot already holds; withKey also (re)binds key → oid
// in the index.
//
// There is never more than one applier: recovery is single-threaded, and a
// replica has exactly one applier goroutine. Concurrent replica readers are
// safe against the Install publication (the version is fully built first),
// and the replica runs GC only from the applier goroutine itself, so an
// installed version can never race a concurrent prune.
//
//ermia:guard-entry single-threaded applier: recovery runs before Open returns, and the replica applier is one goroutine that also owns GC, so no concurrent sweep can reclaim under it
func (db *DB) applyVersion(t *Table, oid mvcc.OID, key, val []byte, clsn uint64, tombstone, withKey bool) {
	t.arr.EnsureAllocated(oid)
	if withKey && len(key) > 0 {
		t.idx.InsertIfAbsent(key, oid)
	}
	head := t.arr.Head(oid)
	if head != nil && head.CLSN() >= clsn {
		return // checkpoint or earlier replay already delivered it
	}
	v := mvcc.NewVersion(val, clsn, tombstone)
	v.MaxPstamp(clsn)
	v.SetNext(head)
	t.arr.Install(oid, v)
}
