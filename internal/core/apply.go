package core

import (
	"ermia/internal/epoch"
	"ermia/internal/wal"
)

// Applier is the shared replay engine: it applies committed log blocks to
// the in-memory state, stamping every installed version with the block's
// commit offset. Startup recovery drives one over the full log scan;
// a replica's streaming loop drives one incrementally, block by block, as
// batches arrive from the primary (see OpenReplica and internal/repl).
//
// An Applier is single-goroutine. Overflow chains are resolved through the
// supplied storage and segment metadata — the local log files during
// recovery, the replica's byte-compatible mirror during replication — so
// both paths share applyCommitBlock/applyRecords verbatim.
type Applier struct {
	db   *DB
	st   wal.Storage
	segs []wal.SegmentMeta
	// ckptBegin skips blocks the restored checkpoint already covers.
	ckptBegin uint64
	// slot guards each application window against version reclamation when
	// the applier runs next to live readers (replica mode). Recovery could
	// run unguarded, but entering an uncontended epoch slot is cheap enough
	// not to special-case.
	slot *epoch.Slot
}

// NewApplier builds an applier over st with the given segment map. Blocks
// whose offset is at or below ckptBegin are skipped (the checkpoint restored
// them already).
func (db *DB) NewApplier(st wal.Storage, segs []wal.SegmentMeta, ckptBegin uint64) *Applier {
	return &Applier{
		db:        db,
		st:        st,
		segs:      append([]wal.SegmentMeta(nil), segs...),
		ckptBegin: ckptBegin,
		slot:      db.gcEpoch.Register(),
	}
}

// SetCheckpoint raises the skip horizon after a mid-stream checkpoint seed:
// blocks at or below begin are covered by the loaded image. Called from the
// applier's own goroutine (the single-goroutine contract covers it).
func (a *Applier) SetCheckpoint(begin uint64) {
	if begin > a.ckptBegin {
		a.ckptBegin = begin
	}
}

// AddSegment extends the segment map as the shipped log grows (deduplicated
// by file name; a re-shipped segment with a later End replaces its entry).
func (a *Applier) AddSegment(sm wal.SegmentMeta) {
	for i := range a.segs {
		if a.segs[i].Name == sm.Name {
			a.segs[i] = sm
			return
		}
	}
	a.segs = append(a.segs, sm)
}

// Apply replays one block. Non-commit blocks (skips, overflow, checkpoint
// markers) carry no directly applicable state and return nil; overflow
// payloads are pulled in through their commit block's backward chain.
func (a *Applier) Apply(b wal.Block) error {
	if b.Type != wal.BlockCommit || b.LSN.Offset() <= a.ckptBegin {
		return nil
	}
	// The epoch window makes the whole block's installs visible as one unit
	// to the reclamation protocol; on a replica it also pins any version an
	// overwrite unlinks until concurrent snapshot readers have moved on.
	a.slot.Enter()
	err := a.db.applyCommitBlock(a.st, a.segs, b)
	a.slot.Exit()
	return err
}

// Close releases the applier's epoch slot.
func (a *Applier) Close() { a.slot.Unregister() }
