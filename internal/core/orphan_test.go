package core

import (
	"testing"
	"time"

	"ermia/internal/mvcc"
)

// TestVisibleOnAbortedOrphanVersion is a regression test for a livelock: a
// reader that loaded a version pointer just before the owner aborted keeps
// the unlinked version reachable. The abort unlinks but never rewrites the
// TID stamp, and once the owner releases its TID slot the stamp can never
// resolve — visible() must classify it as invisible rather than spin.
func TestVisibleOnAbortedOrphanVersion(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t").(*Table)

	// Writer installs an uncommitted version, then aborts and releases.
	writer := db.BeginTxn(0)
	if err := writer.Insert(tbl, []byte("k"), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	orphan := writer.writes[0].newV // the version a slow reader would hold
	writer.Abort()                  // unlink + release TID

	if !mvcc.IsTID(orphan.CLSN()) {
		t.Fatal("aborted version should keep its TID stamp")
	}

	reader := db.BeginTxn(1)
	defer reader.Abort()
	done := make(chan struct{})
	var vis bool
	go func() {
		vis, _ = reader.visible(orphan)
		close(done)
	}()
	select {
	case <-done:
		if vis {
			t.Fatal("aborted orphan version classified visible")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("visible() livelocked on an aborted orphan version")
	}
}

// TestVisibleOnRecycledSlotOrphan extends the scenario: the released slot
// is reclaimed by a NEW transaction before the reader resolves the stamp.
func TestVisibleOnRecycledSlotOrphan(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t").(*Table)

	writer := db.BeginTxn(0)
	if err := writer.Insert(tbl, []byte("k"), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	orphan := writer.writes[0].newV
	writer.Abort()

	// Churn the TID table so the slot is likely reclaimed under a new
	// generation.
	for i := 0; i < 64; i++ {
		txn := db.BeginTxn(0)
		txn.Insert(tbl, []byte{byte(i), 1}, []byte("x"))
		mustCommit(t, txn)
	}

	reader := db.BeginTxn(1)
	defer reader.Abort()
	done := make(chan struct{})
	var vis bool
	go func() {
		vis, _ = reader.visible(orphan)
		close(done)
	}()
	select {
	case <-done:
		if vis {
			t.Fatal("orphan visible after slot recycling")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("visible() livelocked after slot recycling")
	}
}
