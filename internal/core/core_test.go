package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ermia/internal/engine"
	"ermia/internal/wal"
)

func testDB(t testing.TB, serializable bool) *DB {
	t.Helper()
	db, err := Open(Config{
		WAL:          wal.Config{SegmentSize: 1 << 20, BufferSize: 1 << 18},
		Serializable: serializable,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustCommit(t testing.TB, txn engine.Txn) {
	t.Helper()
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func put(t testing.TB, db *DB, tbl engine.Table, key, val string) {
	t.Helper()
	txn := db.Begin(0)
	if err := txn.Insert(tbl, []byte(key), []byte(val)); err != nil {
		t.Fatalf("insert %s: %v", key, err)
	}
	mustCommit(t, txn)
}

func TestBasicCRUD(t *testing.T) {
	for _, ser := range []bool{false, true} {
		t.Run(fmt.Sprintf("serializable=%v", ser), func(t *testing.T) {
			db := testDB(t, ser)
			tbl := db.CreateTable("t")

			put(t, db, tbl, "a", "1")

			txn := db.Begin(0)
			v, err := txn.Get(tbl, []byte("a"))
			if err != nil || string(v) != "1" {
				t.Fatalf("get = %q, %v", v, err)
			}
			if _, err := txn.Get(tbl, []byte("zz")); !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("missing key: %v", err)
			}
			if err := txn.Update(tbl, []byte("a"), []byte("2")); err != nil {
				t.Fatal(err)
			}
			// Own write visible.
			if v, _ := txn.Get(tbl, []byte("a")); string(v) != "2" {
				t.Fatalf("own write invisible: %q", v)
			}
			mustCommit(t, txn)

			txn = db.Begin(0)
			if v, _ := txn.Get(tbl, []byte("a")); string(v) != "2" {
				t.Fatalf("committed update invisible: %q", v)
			}
			if err := txn.Delete(tbl, []byte("a")); err != nil {
				t.Fatal(err)
			}
			if _, err := txn.Get(tbl, []byte("a")); !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("own delete visible: %v", err)
			}
			mustCommit(t, txn)

			txn = db.Begin(0)
			if _, err := txn.Get(tbl, []byte("a")); !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("deleted key found: %v", err)
			}
			txn.Abort()
		})
	}
}

func TestInsertDuplicate(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "k", "v")
	txn := db.Begin(0)
	if err := txn.Insert(tbl, []byte("k"), []byte("v2")); !errors.Is(err, engine.ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	txn.Abort()
}

func TestReinsertAfterDelete(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "k", "v1")

	txn := db.Begin(0)
	if err := txn.Delete(tbl, []byte("k")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)

	txn = db.Begin(0)
	if err := txn.Insert(tbl, []byte("k"), []byte("v2")); err != nil {
		t.Fatalf("reinsert over tombstone: %v", err)
	}
	mustCommit(t, txn)

	txn = db.Begin(0)
	if v, err := txn.Get(tbl, []byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("after reinsert: %q, %v", v, err)
	}
	txn.Abort()
}

func TestInsertAfterAbortedInsert(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")

	txn := db.Begin(0)
	if err := txn.Insert(tbl, []byte("k"), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	txn.Abort()

	// The index entry may dangle; a new insert must still succeed.
	txn = db.Begin(0)
	if err := txn.Insert(tbl, []byte("k"), []byte("alive")); err != nil {
		t.Fatalf("insert after aborted insert: %v", err)
	}
	mustCommit(t, txn)

	txn = db.Begin(0)
	if v, err := txn.Get(tbl, []byte("k")); err != nil || string(v) != "alive" {
		t.Fatalf("get = %q, %v", v, err)
	}
	txn.Abort()
}

func TestSnapshotIsolationReaders(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "old")

	reader := db.Begin(0)
	if v, _ := reader.Get(tbl, []byte("x")); string(v) != "old" {
		t.Fatal("setup")
	}

	// A writer commits mid-flight; the reader's snapshot must not move.
	writer := db.Begin(1)
	if err := writer.Update(tbl, []byte("x"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, writer)

	if v, _ := reader.Get(tbl, []byte("x")); string(v) != "old" {
		t.Fatalf("snapshot moved: read %q", v)
	}
	mustCommit(t, reader) // readers and writers never conflict under SI

	after := db.Begin(0)
	if v, _ := after.Get(tbl, []byte("x")); string(v) != "new" {
		t.Fatalf("new snapshot sees %q", v)
	}
	after.Abort()
}

func TestNoDirtyReads(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "committed")

	writer := db.Begin(0)
	if err := writer.Update(tbl, []byte("x"), []byte("uncommitted")); err != nil {
		t.Fatal(err)
	}

	reader := db.Begin(1)
	if v, _ := reader.Get(tbl, []byte("x")); string(v) != "committed" {
		t.Fatalf("dirty read: %q", v)
	}
	reader.Abort()
	writer.Abort()

	reader = db.Begin(1)
	if v, _ := reader.Get(tbl, []byte("x")); string(v) != "committed" {
		t.Fatalf("aborted write visible: %q", v)
	}
	reader.Abort()
}

func TestFirstUpdaterWins(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "base")

	first := db.Begin(0)
	if err := first.Update(tbl, []byte("x"), []byte("first")); err != nil {
		t.Fatal(err)
	}

	// Second updater must abort immediately — early write-write detection.
	second := db.Begin(1)
	err := second.Update(tbl, []byte("x"), []byte("second"))
	if !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("second updater: %v", err)
	}
	second.Abort()
	mustCommit(t, first)

	if db.Stats().WWAborts.Load() == 0 {
		t.Error("write-write abort not counted")
	}
}

func TestUpdateAfterConcurrentCommitConflicts(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "base")

	old := db.Begin(0) // snapshot before the overwrite
	if _, err := old.Get(tbl, []byte("x")); err != nil {
		t.Fatal(err)
	}

	w := db.Begin(1)
	if err := w.Update(tbl, []byte("x"), []byte("newer")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, w)

	// old's snapshot predates the committed overwrite: updating would be a
	// lost update.
	if err := old.Update(tbl, []byte("x"), []byte("stale")); !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("stale update: %v", err)
	}
	old.Abort()
}

func TestScan(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	for i := 0; i < 50; i++ {
		put(t, db, tbl, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	// Delete a few; they must vanish from scans.
	txn := db.Begin(0)
	for i := 0; i < 50; i += 10 {
		if err := txn.Delete(tbl, []byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, txn)

	txn = db.Begin(0)
	var got []string
	err := txn.Scan(tbl, []byte("k010"), []byte("k030"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// k010, k020 deleted: 20 keys in [010,030) minus 2.
	if len(got) != 18 {
		t.Fatalf("scan got %d keys: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("scan out of order")
		}
	}
	txn.Abort()
}

func TestScanSeesOwnWrites(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "b", "old")

	txn := db.Begin(0)
	if err := txn.Insert(tbl, []byte("a"), []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Update(tbl, []byte("b"), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	if err := txn.Scan(tbl, nil, nil, func(k, v []byte) bool {
		seen[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen["a"] != "mine" || seen["b"] != "updated" {
		t.Fatalf("own writes in scan: %v", seen)
	}
	txn.Abort()
}

// Write skew: the classic SI anomaly. Two transactions each read both
// constraints rows and update the other one. Plain SI commits both
// (anomaly); SSN must abort one.
func TestWriteSkew(t *testing.T) {
	run := func(serializable bool) (bothCommitted bool) {
		db := testDB(t, serializable)
		tbl := db.CreateTable("t")
		put(t, db, tbl, "a", "1")
		put(t, db, tbl, "b", "1")

		t1 := db.Begin(0)
		t2 := db.Begin(1)
		if _, err := t1.Get(tbl, []byte("a")); err != nil {
			t.Fatal(err)
		}
		if _, err := t1.Get(tbl, []byte("b")); err != nil {
			t.Fatal(err)
		}
		if _, err := t2.Get(tbl, []byte("a")); err != nil {
			t.Fatal(err)
		}
		if _, err := t2.Get(tbl, []byte("b")); err != nil {
			t.Fatal(err)
		}
		if err := t1.Update(tbl, []byte("a"), []byte("0")); err != nil {
			t.Fatal(err)
		}
		if err := t2.Update(tbl, []byte("b"), []byte("0")); err != nil {
			t1.Abort()
			t2.Abort()
			t.Fatal(err)
		}
		err1 := t1.Commit()
		err2 := t2.Commit()
		return err1 == nil && err2 == nil
	}

	if !run(false) {
		t.Error("plain SI should exhibit write skew (both commit)")
	}
	if run(true) {
		t.Error("SSN let write skew commit")
	}
}

// A three-transaction serial dependency cycle through read-write conflicts.
func TestSSNBlocksRWCycle(t *testing.T) {
	db := testDB(t, true)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "0")
	put(t, db, tbl, "y", "0")

	// T1 reads x, T2 writes x and commits, T2 read y earlier, T1 writes y:
	// T1 -rw-> T2 (x), T2 -rw-> T1 (y) ⇒ cycle if both commit.
	t1 := db.Begin(0)
	t2 := db.Begin(1)
	if _, err := t1.Get(tbl, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Get(tbl, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update(tbl, []byte("x"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("t2 commit: %v", err)
	}
	err := t1.Update(tbl, []byte("y"), []byte("1"))
	if err == nil {
		err = t1.Commit()
	} else {
		t1.Abort()
	}
	if err == nil {
		t.Fatal("cycle committed under SSN")
	}
	if !engine.IsRetryable(err) {
		t.Fatalf("unexpected error class: %v", err)
	}
}

func TestPhantomProtection(t *testing.T) {
	db := testDB(t, true)
	tbl := db.CreateTable("t")
	for i := 0; i < 10; i++ {
		put(t, db, tbl, fmt.Sprintf("k%02d", i), "v")
	}

	scanner := db.Begin(0)
	count := 0
	if err := scanner.Scan(tbl, []byte("k00"), []byte("k99"), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("scanned %d", count)
	}
	// Make the scanner a read-write transaction so the phantom matters.
	if err := scanner.Update(tbl, []byte("k00"), []byte("marked")); err != nil {
		t.Fatal(err)
	}

	// A phantom arrives in the scanned range.
	other := db.Begin(1)
	if err := other.Insert(tbl, []byte("k05x"), []byte("phantom")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, other)

	if err := scanner.Commit(); !errors.Is(err, engine.ErrPhantom) {
		t.Fatalf("phantom commit: %v", err)
	}
	if db.Stats().PhantomAborts.Load() == 0 {
		t.Error("phantom abort not counted")
	}
}

func TestOwnInsertDoesNotTripPhantomCheck(t *testing.T) {
	db := testDB(t, true)
	tbl := db.CreateTable("t")
	for i := 0; i < 10; i++ {
		put(t, db, tbl, fmt.Sprintf("k%02d", i), "v")
	}
	txn := db.Begin(0)
	if err := txn.Scan(tbl, []byte("k00"), []byte("k99"), func(k, v []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	// Inserting into the range we scanned ourselves must not abort us.
	if err := txn.Insert(tbl, []byte("k05x"), []byte("own")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("own-insert commit: %v", err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	txn := db.BeginReadOnly(0)
	if err := txn.Insert(tbl, []byte("k"), []byte("v")); err == nil {
		t.Fatal("read-only insert succeeded")
	}
	txn.Abort()
}

func TestGC(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "v0")
	for i := 1; i <= 20; i++ {
		txn := db.Begin(0)
		if err := txn.Update(tbl, []byte("x"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, txn)
	}
	removed := db.RunGC()
	if removed < 15 {
		t.Fatalf("GC pruned %d versions, want most of 20", removed)
	}
	// The record still reads correctly.
	txn := db.Begin(0)
	if v, err := txn.Get(tbl, []byte("x")); err != nil || string(v) != "v20" {
		t.Fatalf("after GC: %q, %v", v, err)
	}
	txn.Abort()
}

func TestGCRespectsActiveSnapshots(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "snapshot-value")

	reader := db.Begin(0)
	if _, err := reader.Get(tbl, []byte("x")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		txn := db.Begin(1)
		if err := txn.Update(tbl, []byte("x"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, txn)
	}
	db.RunGC()

	// The long reader's snapshot must still resolve.
	if v, err := reader.Get(tbl, []byte("x")); err != nil || string(v) != "snapshot-value" {
		t.Fatalf("snapshot read after GC: %q, %v", v, err)
	}
	reader.Abort()
}

func TestConcurrentDisjointWriters(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	const workers, per = 8, 300
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := db.Begin(id)
				key := []byte(fmt.Sprintf("w%d-k%d", id, i))
				if err := txn.Insert(tbl, key, []byte("v")); err != nil {
					txn.Abort()
					errCh <- err
					return
				}
				if err := txn.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := db.Stats().Commits.Load(); got < workers*per {
		t.Fatalf("commits = %d", got)
	}
	txn := db.Begin(0)
	n := 0
	txn.Scan(tbl, nil, nil, func(k, v []byte) bool { n++; return true })
	txn.Abort()
	if n != workers*per {
		t.Fatalf("scan found %d records, want %d", n, workers*per)
	}
}

func TestConcurrentCountersNoLostUpdates(t *testing.T) {
	for _, ser := range []bool{false, true} {
		t.Run(fmt.Sprintf("serializable=%v", ser), func(t *testing.T) {
			db := testDB(t, ser)
			tbl := db.CreateTable("t")
			put(t, db, tbl, "counter", "0")

			const workers, per = 6, 100
			var committed [workers]int
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						for {
							txn := db.Begin(id)
							v, err := txn.Get(tbl, []byte("counter"))
							if err != nil {
								txn.Abort()
								continue
							}
							var n int
							fmt.Sscanf(string(v), "%d", &n)
							err = txn.Update(tbl, []byte("counter"), []byte(fmt.Sprintf("%d", n+1)))
							if err == nil {
								err = txn.Commit()
							} else {
								txn.Abort()
							}
							if err == nil {
								committed[id]++
								break
							}
							if !engine.IsRetryable(err) {
								t.Error(err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()

			total := 0
			for _, c := range committed {
				total += c
			}
			txn := db.Begin(0)
			v, err := txn.Get(tbl, []byte("counter"))
			txn.Abort()
			if err != nil {
				t.Fatal(err)
			}
			var n int
			fmt.Sscanf(string(v), "%d", &n)
			if n != total {
				t.Fatalf("counter = %d, committed increments = %d (lost updates!)", n, total)
			}
		})
	}
}

func TestWaitDurable(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "k", "v")
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	if db.Log().DurableOffset() == 0 {
		t.Fatal("durable horizon not advanced")
	}
}

func TestBackgroundGC(t *testing.T) {
	db, err := Open(Config{
		WAL:        wal.Config{SegmentSize: 1 << 20, BufferSize: 1 << 18},
		GCInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "v0")
	for i := 0; i < 50; i++ {
		txn := db.Begin(0)
		txn.Update(tbl, []byte("x"), []byte(fmt.Sprintf("v%d", i)))
		txn.Commit()
	}
	deadline := time.Now().Add(2 * time.Second)
	for db.Stats().VersionsPruned.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background GC never pruned")
		}
		time.Sleep(time.Millisecond)
	}
}
