package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ermia/internal/engine"
)

// These tests exercise the Serial Safety Net commit protocol (§3.6.2,
// Algorithm 1) through crafted interleavings.

// A committed reader must raise the overwriter's η: T1 reads x and commits;
// T2 (which started before T1 committed and overwrote x) must see
// η(T2) ≥ cstamp(T1) through x's pstamp. Here the dependency is benign
// (no cycle), so both commit — SSN must not over-abort a plain
// reader-then-writer pair.
func TestSSNReaderThenOverwriterCommits(t *testing.T) {
	db := testDB(t, true)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "0")

	t1 := db.Begin(0)
	if _, err := t1.Get(tbl, []byte("x")); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin(1)
	if err := t2.Update(tbl, []byte("x"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("overwriter commit: %v", err)
	}
}

// A read-only transaction can close a dependency cycle; SSN must abort it.
// History: T2 writes y then commits between T_ro's reads such that
// T_ro -rw-> T2 (T_ro read old y) and T2 -wr-> ... -> T_ro would require
// T_ro to serialize both before and after T2.
func TestSSNReadOnlyParticipatesInCycle(t *testing.T) {
	db := testDB(t, true)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "x", "0")
	put(t, db, tbl, "y", "0")

	// T1: reads y (old), will write x.
	t1 := db.Begin(0)
	if _, err := t1.Get(tbl, []byte("y")); err != nil {
		t.Fatal(err)
	}

	// T2: writes y, commits. Now T1 -rw-> T2.
	t2 := db.Begin(1)
	if err := t2.Update(tbl, []byte("y"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// T3 (read-only): reads y (new, after T2) and x (old, before T1's
	// write). If T1 then commits its x write, the order must be
	// T1 -> T2 -> T3 -> T1: a cycle through the read-only T3.
	t3 := db.BeginReadOnly(2)
	if v, err := t3.Get(tbl, []byte("y")); err != nil || string(v) != "2" {
		t.Fatalf("t3 read y: %q %v", v, err)
	}
	if _, err := t3.Get(tbl, []byte("x")); err != nil {
		t.Fatal(err)
	}

	err1 := t1.Update(tbl, []byte("x"), []byte("1"))
	if err1 == nil {
		err1 = t1.Commit()
	} else {
		t1.Abort()
	}
	err3 := t3.Commit()
	if err3 != nil {
		t3.Abort()
	}
	// At least one participant of the would-be cycle must have aborted.
	if err1 == nil && err3 == nil {
		// Verify there is really a cycle possibility: T1 committed a write
		// to x that T3 did not see, and T3 saw T2's y which T1 did not.
		t.Fatal("SSN committed all participants of an rw-cycle through a read-only txn")
	}
}

// Forward-processing early abort: a transaction whose exclusion window
// already closed must be killed at the offending read, not at commit —
// the paper's "early detection of doomed transactions".
//
// Construction: the victim acquires a predecessor with a late commit stamp
// (a reader R of record c, which the victim then overwrites: η ≥ cstamp(R))
// and only afterwards reads a version whose overwriter U committed before R
// (π ≤ π(U) ≤ cstamp(U) < cstamp(R)). The exclusion window closes at that
// read.
func TestSSNEarlyAbortDuringForwardProcessing(t *testing.T) {
	db := testDB(t, true)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "a", "0")
	put(t, db, tbl, "c", "0")

	victim := db.Begin(0) // snapshot predates everything below

	// U overwrites a and commits (cstamp c_U).
	u := db.Begin(1)
	if err := u.Update(tbl, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, u)

	// R reads c and commits after U (cstamp c_R > c_U), publishing η on c.
	r := db.Begin(2)
	if _, err := r.Get(tbl, []byte("c")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, r)

	// Victim overwrites c: η(victim) ≥ c_R.
	err := victim.Update(tbl, []byte("c"), []byte("2"))
	if err == nil {
		// Victim reads a: its snapshot yields the old version, overwritten
		// by U with π(U) ≤ c_U < c_R — the exclusion window closes NOW.
		_, err = victim.Get(tbl, []byte("a"))
	}
	if err == nil {
		t.Fatal("doomed transaction not aborted during forward processing")
	}
	victim.Abort()
	if !errors.Is(err, engine.ErrSerialization) {
		t.Fatalf("expected serialization failure, got %v", err)
	}
}

// Concurrent SSN commits on overlapping footprints must never produce a
// state that violates the monotonicity of committed values (each key's
// version counter only grows by 1 per commit).
func TestSSNConcurrentCommitIntegrity(t *testing.T) {
	db := testDB(t, true)
	tbl := db.CreateTable("t")
	const keys = 4
	for k := 0; k < keys; k++ {
		put(t, db, tbl, fmt.Sprintf("k%d", k), "0")
	}
	const workers, per = 6, 150
	var wg sync.WaitGroup
	var commits [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := db.Begin(id)
				src := fmt.Sprintf("k%d", (id+i)%keys)
				dst := fmt.Sprintf("k%d", (id+i+1)%keys)
				v, err := txn.Get(tbl, []byte(src))
				if err != nil {
					txn.Abort()
					continue
				}
				var n int
				fmt.Sscanf(string(v), "%d", &n)
				if err := txn.Update(tbl, []byte(dst), []byte(fmt.Sprintf("%d", n+1))); err != nil {
					txn.Abort()
					continue
				}
				if txn.Commit() == nil {
					commits[id]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range commits {
		total += c
	}
	if total == 0 {
		t.Fatal("workload fully starved")
	}
	stats := db.Stats()
	t.Logf("commits=%d ssn-aborts=%d ww-aborts=%d",
		total, stats.SerialAborts.Load(), stats.WWAborts.Load())
}

// SSN stats must only move under the serializable configuration.
func TestSSNDisabledUnderSI(t *testing.T) {
	db := testDB(t, false)
	tbl := db.CreateTable("t")
	put(t, db, tbl, "a", "0")
	put(t, db, tbl, "b", "0")

	// The write-skew pair commits under SI with zero serialization aborts.
	t1 := db.Begin(0)
	t2 := db.Begin(1)
	t1.Get(tbl, []byte("a"))
	t1.Get(tbl, []byte("b"))
	t2.Get(tbl, []byte("a"))
	t2.Get(tbl, []byte("b"))
	t1.Update(tbl, []byte("a"), []byte("1"))
	t2.Update(tbl, []byte("b"), []byte("1"))
	mustCommit(t, t1)
	mustCommit(t, t2)
	if got := db.Stats().SerialAborts.Load(); got != 0 {
		t.Fatalf("SI config produced %d serialization aborts", got)
	}
}
