package core

import (
	"runtime"
	"time"

	"ermia/internal/engine"
	"ermia/internal/index"
	"ermia/internal/mvcc"
	"ermia/internal/txnid"
	"ermia/internal/wal"
)

// Txn is an ERMIA transaction. It is single-goroutine; Commit or Abort must
// be called exactly once.
type Txn struct {
	db       *DB
	worker   int
	tid      txnid.TID
	begin    uint64
	mode     Isolation
	ssn      bool // mode == SSN, cached for the hot paths
	readOnly bool
	done     bool

	// SSN priority stamps (§3.6.2): pstamp is η(T), the latest committed
	// predecessor; sstamp is π(T), the earliest committed successor.
	pstamp uint64
	sstamp uint64

	reads   []*mvcc.Version
	rvReads []rvRead
	writes  []writeEntry
	// lastWrite indexes the write entry touched by the most recent mutating
	// op. An insert does not always append: re-inserting a key this
	// transaction already wrote coalesces into the existing entry in place,
	// so "the last element of writes" is not a valid way to find it.
	lastWrite int
	nodeSet   []index.Handle[mvcc.OID]
	logBuf    []byte
	opChain   uint64 // offset of the newest overflow/per-op block, or 0

	prof *Profile
}

type writeEntry struct {
	tbl  *Table
	oid  mvcc.OID
	newV *mvcc.Version
	prev *mvcc.Version // overwritten version; nil for a fresh insert
	key  []byte        // logged for inserts so recovery can rebuild the index
	kind uint8         // recInsert, recUpdate, recDelete
	sec  []loggedSecondary
}

// Begin starts a read-write transaction on the given worker slot: the
// transaction joins the epoch managers, acquires a TID and a begin
// timestamp (the current LSN), and is ready for forward processing (§3.1).
func (db *DB) Begin(worker int) engine.Txn { return db.begin(worker, false) }

// BeginReadOnly starts a transaction that will not write. ERMIA needs no
// special snapshot machinery for it: SI already isolates readers.
func (db *DB) BeginReadOnly(worker int) engine.Txn { return db.begin(worker, true) }

// BeginTxn is Begin returning the concrete type.
func (db *DB) BeginTxn(worker int) *Txn { return db.begin(worker, false) }

func (db *DB) begin(worker int, readOnly bool) *Txn {
	w := worker & (MaxWorkers - 1)
	ws := &db.workers[w]
	if ws.slot == nil {
		ws.slot = db.gcEpoch.Register()
	}
	ws.slot.Enter()
	tid, err := db.tids.Allocate(db.beginStamp)
	if err != nil {
		// 64K slots with far fewer in-flight transactions: exhaustion means
		// leaked transactions, a programming error.
		panic(err)
	}
	db.workerTID[w].Store(uint64(tid))
	begin, _ := db.tids.Begin(tid)
	t := &Txn{
		db:       db,
		worker:   w,
		tid:      tid,
		begin:    begin,
		mode:     db.cfg.Isolation,
		readOnly: readOnly,
		sstamp:   mvcc.Infinity,
	}
	t.ssn = t.mode == SSN
	if db.cfg.Profile {
		t.prof = &ws.prof
	}
	return t
}

// clock returns a start time when profiling, else zero.
func (t *Txn) clock() time.Time {
	if t.prof == nil {
		return time.Time{}
	}
	return time.Now()
}

func (t *Txn) accIndex(start time.Time) {
	if t.prof != nil {
		t.prof.Index.Add(time.Since(start).Nanoseconds())
	}
}

func (t *Txn) accIndirect(start time.Time) {
	if t.prof != nil {
		t.prof.Indirect.Add(time.Since(start).Nanoseconds())
	}
}

func (t *Txn) accLog(start time.Time) {
	if t.prof != nil {
		t.prof.Log.Add(time.Since(start).Nanoseconds())
	}
}

// visible decides whether version v belongs to t's snapshot. For
// LSN-stamped versions this is a stamp comparison; TID-stamped versions
// chase the owner's context (§3.6.1), waiting out owners that entered
// pre-commit with a stamp inside the snapshot, so snapshots stay
// consistent. The returned cstamp is the version's commit stamp (0 for own
// writes).
func (t *Txn) visible(v *mvcc.Version) (bool, uint64) {
	s := v.CLSN()
	for {
		if !mvcc.IsTID(s) {
			return s < t.begin, s
		}
		owner := mvcc.AsTID(s)
		if owner == t.tid {
			return true, 0
		}
		status, cstamp, ok := t.db.tids.Inquire(owner)
		if !ok {
			// The owner released its TID. A committed owner rewrites every
			// write's stamp during post-commit, strictly before releasing,
			// so a stamp that still carries the TID can only belong to an
			// aborted transaction's unlinked version a concurrent traversal
			// is still holding: invisible.
			s = v.CLSN()
			if mvcc.IsTID(s) && mvcc.AsTID(s) == owner {
				return false, 0
			}
			continue
		}
		switch status {
		case txnid.StatusActive:
			// Its eventual commit stamp will postdate our snapshot.
			return false, 0
		case txnid.StatusCommitting:
			if cstamp >= t.begin {
				return false, 0
			}
			// Entered pre-commit inside our snapshot: wait for the outcome,
			// otherwise our snapshot would be inconsistent.
			runtime.Gosched()
			s = v.CLSN()
		case txnid.StatusCommitted:
			return cstamp < t.begin, cstamp
		case txnid.StatusAborted:
			// Being unlinked; skip it.
			return false, 0
		default:
			s = v.CLSN()
		}
	}
}

// readVisible walks oid's version chain and returns the version in t's
// snapshot, or nil.
//
//ermia:guarded
func (t *Txn) readVisible(arr *mvcc.OIDArray, oid mvcc.OID) (*mvcc.Version, uint64) {
	start := t.clock()
	defer t.accIndirect(start)
	for v := arr.Head(oid); v != nil; v = v.Next() {
		if ok, cstamp := t.visible(v); ok {
			return v, cstamp
		}
	}
	return nil, 0
}

// ssnRead applies SSN's read rules (forward-processing half): record the
// read, raise η(T) with the version's creation stamp, lower π(T) with the
// version's successor stamp, and abort early when the exclusion window
// closes. cstamp is 0 for own writes, which SSN ignores.
func (t *Txn) ssnRead(v *mvcc.Version, cstamp uint64) error {
	if !t.ssn || cstamp == 0 {
		return nil
	}
	v.MarkReader(t.worker)
	t.reads = append(t.reads, v)
	if cstamp > t.pstamp {
		t.pstamp = cstamp
	}
	if ss := t.resolveSstamp(v, 0); ss < t.sstamp {
		t.sstamp = ss
	}
	if t.sstamp <= t.pstamp {
		t.db.stats.SerialAborts.Add(1)
		return engine.ErrSerialization
	}
	return nil
}

// resolveSstamp returns v's final successor stamp, resolving a TID tag by
// chasing the overwriter. myCstamp is the caller's commit stamp during
// pre-commit, or 0 during forward processing (when any committed overwriter
// precedes the caller). Overwriters that serialize after the caller, or
// that aborted, contribute Infinity.
func (t *Txn) resolveSstamp(v *mvcc.Version, myCstamp uint64) uint64 {
	for {
		ss := v.Sstamp()
		if !mvcc.IsTID(ss) {
			return ss
		}
		owner := mvcc.AsTID(ss)
		if owner == t.tid {
			return mvcc.Infinity // self edge
		}
		status, cstamp, ok := t.db.tids.Inquire(owner)
		if !ok {
			runtime.Gosched()
			continue // finishing post-commit; the tag is being replaced
		}
		switch status {
		case txnid.StatusCommitting:
			if myCstamp != 0 && cstamp > myCstamp {
				return mvcc.Infinity // serializes after me
			}
			runtime.Gosched()
		case txnid.StatusCommitted:
			runtime.Gosched() // final stamp lands during its post-commit
		default: // aborted, or tag already recycled: not overwritten
			return mvcc.Infinity
		}
	}
}

// ssnWrite applies SSN's write rules for an overwritten version.
func (t *Txn) ssnWrite(prev *mvcc.Version) error {
	if !t.ssn || prev == nil {
		return nil
	}
	if p := prev.Pstamp(); p > t.pstamp {
		t.pstamp = p
	}
	if t.sstamp <= t.pstamp {
		t.db.stats.SerialAborts.Add(1)
		return engine.ErrSerialization
	}
	return nil
}

// addNode tracks an index leaf handle for phantom validation (any
// serializable mode).
func (t *Txn) addNode(h index.Handle[mvcc.OID]) {
	if t.mode == SnapshotIsolation {
		return
	}
	for i := range t.nodeSet {
		if t.nodeSet[i] == h {
			return
		}
	}
	t.nodeSet = append(t.nodeSet, h)
}

// refreshNode replaces a tracked handle that the transaction's own index
// insert superseded.
func (t *Txn) refreshNode(before, after index.Handle[mvcc.OID]) {
	for i := range t.nodeSet {
		if t.nodeSet[i] == before {
			t.nodeSet[i] = after
		}
	}
}

func (t *Txn) table(tbl engine.Table) *Table { return tbl.(*Table) }

// Get implements engine.Txn.
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) Get(tbl engine.Table, key []byte) ([]byte, error) {
	if t.done {
		return nil, engine.ErrAborted
	}
	tab := t.table(tbl)
	is := t.clock()
	oid, ok, h := tab.idx.GetH(key)
	t.accIndex(is)
	t.addNode(h)
	if !ok {
		return nil, engine.ErrNotFound
	}
	v, cstamp := t.readVisible(tab.arr, oid)
	if v == nil {
		return nil, engine.ErrNotFound
	}
	if err := t.ssnRead(v, cstamp); err != nil {
		return nil, err
	}
	t.rvTrack(tab.arr, oid, v, cstamp)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Scan implements engine.Txn.
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) Scan(tbl engine.Table, lo, hi []byte, fn func(key, value []byte) bool) error {
	if t.done {
		return engine.ErrAborted
	}
	tab := t.table(tbl)
	var err error
	onLeaf := func(h index.Handle[mvcc.OID]) { t.addNode(h) }
	if t.mode == SnapshotIsolation {
		onLeaf = nil
	}
	is := t.clock()
	tab.idx.Scan(lo, hi, onLeaf, func(key []byte, oid mvcc.OID) bool {
		t.accIndex(is)
		v, cstamp := t.readVisible(tab.arr, oid)
		cont := true
		if v != nil {
			if err = t.ssnRead(v, cstamp); err != nil {
				is = t.clock()
				return false
			}
			t.rvTrack(tab.arr, oid, v, cstamp)
			if !v.Tombstone {
				cont = fn(key, v.Data)
			}
		}
		is = t.clock()
		return cont
	})
	t.accIndex(is)
	return err
}

// Insert implements engine.Txn: allocate a fresh OID (contention-free),
// publish the version, then insert key → OID into the index (§3.2).
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) Insert(tbl engine.Table, key, value []byte) error {
	if t.done {
		return engine.ErrAborted
	}
	if t.readOnly {
		return engine.ErrAborted
	}
	if err := t.checkWritable(); err != nil {
		return err
	}
	tab := t.table(tbl)
	newV := mvcc.NewVersion(value, mvcc.TIDStamp(t.tid), false)

	vs := t.clock()
	oid := tab.arr.Alloc()
	tab.arr.Install(oid, newV)
	t.accIndirect(vs)

	is := t.clock()
	existing, inserted, before, after := tab.idx.InsertH(key, oid)
	t.accIndex(is)

	if inserted {
		if t.ssn {
			t.refreshNode(before, after)
		}
		t.recordWrite(writeEntry{tbl: tab, oid: oid, newV: newV, key: cloneKey(key), kind: recInsert})
		return t.perOpLog()
	}

	// The key exists in the index: either a live duplicate, or a deleted /
	// dangling record whose OID we can repopulate. Clear the orphan slot we
	// provisioned so no TID-stamped version outlives this transaction.
	tab.arr.Install(oid, nil)
	return t.installOver(tab, existing, value, false, true, cloneKey(key))
}

// Update implements engine.Txn.
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) Update(tbl engine.Table, key, value []byte) error {
	if t.done {
		return engine.ErrAborted
	}
	if t.readOnly {
		return engine.ErrAborted
	}
	if err := t.checkWritable(); err != nil {
		return err
	}
	tab := t.table(tbl)
	is := t.clock()
	oid, ok, h := tab.idx.GetH(key)
	t.accIndex(is)
	t.addNode(h)
	if !ok {
		return engine.ErrNotFound
	}
	return t.installOver(tab, oid, value, false, false, nil)
}

// Delete implements engine.Txn: a tombstone update (§3.2). The index entry
// stays; the garbage collector reclaims dead versions later.
//
//ermia:guard-entry the worker's epoch slot was entered in begin and is held until finish; every Txn method runs inside that window
func (t *Txn) Delete(tbl engine.Table, key []byte) error {
	if t.done {
		return engine.ErrAborted
	}
	if t.readOnly {
		return engine.ErrAborted
	}
	if err := t.checkWritable(); err != nil {
		return err
	}
	tab := t.table(tbl)
	is := t.clock()
	oid, ok, h := tab.idx.GetH(key)
	t.accIndex(is)
	t.addNode(h)
	if !ok {
		return engine.ErrNotFound
	}
	return t.installOver(tab, oid, nil, true, false, nil)
}

// installOver installs a new version at oid's chain head under the
// first-updater-wins rule: an uncommitted head aborts us immediately (the
// early write-write detection the paper credits for minimizing wasted
// work), a committed head newer than our snapshot aborts us, and a racing
// CAS aborts us. asInsert permits writing over a tombstone (reinsert) and
// reports ErrDuplicate instead of overwriting live records.
//
//ermia:guarded
func (t *Txn) installOver(tab *Table, oid mvcc.OID, value []byte, tombstone, asInsert bool, insKey []byte) error {
	start := t.clock()
	defer t.accIndirect(start)
	for {
		head := tab.arr.Head(oid)
		if head == nil {
			// Dangling OID from an aborted insert: claim it.
			if !asInsert {
				return engine.ErrNotFound
			}
			newV := mvcc.NewVersion(value, mvcc.TIDStamp(t.tid), tombstone)
			if !tab.arr.CASHead(oid, nil, newV) {
				continue // racing claimer; re-examine
			}
			t.recordWrite(writeEntry{tbl: tab, oid: oid, newV: newV, key: insKey, kind: recInsert})
			return t.perOpLog()
		}

		s := head.CLSN()
		if mvcc.IsTID(s) {
			owner := mvcc.AsTID(s)
			if owner == t.tid {
				if asInsert && !head.Tombstone {
					return engine.ErrDuplicate // inserting over our own live write
				}
				// Overwriting our own in-flight write: replace it in place.
				newV := mvcc.NewVersion(value, mvcc.TIDStamp(t.tid), tombstone)
				newV.SetNext(head.Next())
				if !tab.arr.CASHead(oid, head, newV) {
					continue
				}
				t.replaceWrite(tab, oid, newV, tombstone, asInsert, insKey)
				return t.perOpLog()
			}
			status, cstamp, ok := t.db.tids.Inquire(owner)
			if !ok {
				// The owner released its TID. If the head still carries the
				// TID, the owner aborted and this is an orphan a concurrent
				// unlink missed (see Txn.visible): help unlink it rather
				// than spin.
				if s2 := head.CLSN(); mvcc.IsTID(s2) && mvcc.AsTID(s2) == owner {
					tab.arr.CASHead(oid, head, head.Next())
				}
				continue
			}
			switch status {
			case txnid.StatusActive, txnid.StatusCommitting:
				// First-updater-wins: the head is another transaction's
				// uncommitted write, our update loses right now.
				t.db.stats.WWAborts.Add(1)
				t.db.stats.WWInFlight.Add(1)
				return engine.ErrWriteConflict
			case txnid.StatusCommitted:
				if cstamp >= t.begin {
					t.db.stats.WWAborts.Add(1)
					t.db.stats.WWNewer.Add(1)
					return engine.ErrWriteConflict
				}
				// Committed inside our snapshot, mid post-commit: treat the
				// head as the committed version and fall through.
			case txnid.StatusAborted:
				runtime.Gosched() // abort cleanup will unlink it
				continue
			default:
				continue
			}
		} else if s >= t.begin {
			// A newer committed version exists: updating would be a lost
			// update.
			t.db.stats.WWAborts.Add(1)
			t.db.stats.WWNewer.Add(1)
			return engine.ErrWriteConflict
		}

		if head.Tombstone {
			if !asInsert {
				return engine.ErrNotFound
			}
		} else if asInsert {
			return engine.ErrDuplicate
		}

		newV := mvcc.NewVersion(value, mvcc.TIDStamp(t.tid), tombstone)
		newV.SetNext(head)
		if !tab.arr.CASHead(oid, head, newV) {
			// Another writer installed first: write-write conflict.
			t.db.stats.WWAborts.Add(1)
			t.db.stats.WWCASRace.Add(1)
			return engine.ErrWriteConflict
		}
		kind := recUpdate
		if tombstone {
			kind = recDelete
		}
		if asInsert {
			kind = recInsert
		}
		t.recordWrite(writeEntry{tbl: tab, oid: oid, newV: newV, prev: head, key: insKey, kind: kind})
		if err := t.ssnWrite(head); err != nil {
			return err
		}
		return t.perOpLog()
	}
}

// recordWrite appends a write-set entry.
func (t *Txn) recordWrite(w writeEntry) {
	t.writes = append(t.writes, w)
	t.lastWrite = len(t.writes) - 1
}

// replaceWrite swaps the write-set entry for (table, oid) after an in-place
// self-overwrite, preserving the original prev and insert key. OIDs are
// per-table, so the table must participate in the match: matching on OID
// alone once clobbered a different table's entry, orphaning that record's
// TID-stamped head and corrupting its log record.
func (t *Txn) replaceWrite(tab *Table, oid mvcc.OID, newV *mvcc.Version, tombstone, asInsert bool, insKey []byte) {
	for i := range t.writes {
		w := &t.writes[i]
		if w.tbl == tab && w.oid == oid {
			w.newV = newV
			switch {
			case asInsert && !tombstone:
				// Reinsert over our own tombstone. The entry must log as an
				// insert: an update record carries neither the key nor the
				// secondary bindings InsertWithSecondary is about to attach,
				// so leaving it as recUpdate/recDelete would recover the
				// value but silently drop the new secondary keys.
				w.kind = recInsert
				w.key = insKey
			case w.kind != recInsert:
				if tombstone {
					w.kind = recDelete
				} else {
					w.kind = recUpdate
				}
			}
			t.lastWrite = i
			return
		}
	}
}

func cloneKey(k []byte) []byte {
	out := make([]byte, len(k))
	copy(out, k)
	return out
}

// perOpLog, in LogPerOperation mode, ships the newest write's log record to
// the central buffer immediately, emulating traditional per-operation WAL
// (the Figure 10 comparison). The blocks chain backward so recovery applies
// them only if the final commit block lands.
func (t *Txn) perOpLog() error {
	if !t.db.cfg.LogPerOperation || len(t.writes) == 0 {
		return nil
	}
	w := &t.writes[len(t.writes)-1]
	t.logBuf = t.encodeWrite(t.logBuf[:0], w)
	start := t.clock()
	defer t.accLog(start)
	t.db.logGate.RLock()
	defer t.db.logGate.RUnlock()
	res, err := t.db.logMgr().Reserve(len(t.logBuf), wal.BlockOverflow)
	if err != nil {
		return t.db.updateUnavailable(err)
	}
	res.SetPrev(t.opChain)
	res.Append(t.logBuf)
	res.Commit()
	t.opChain = res.Offset()
	return nil
}

// encodeWrite appends w's log record to buf.
func (t *Txn) encodeWrite(buf []byte, w *writeEntry) []byte {
	switch w.kind {
	case recInsert:
		if w.newV.Tombstone {
			// The transaction inserted and then deleted the record. If the
			// entry began by overwriting a live committed version (a
			// delete-reinsert-delete chain), the net effect is that delete;
			// otherwise the net effect on recovered state is nothing.
			if w.prev != nil && !w.prev.Tombstone {
				return appendDelete(buf, w.tbl.id, uint64(w.oid))
			}
			return buf
		}
		if len(w.sec) > 0 {
			return appendInsertSec(buf, w.tbl.id, uint64(w.oid), w.key, w.newV.Data, w.sec)
		}
		return appendInsert(buf, w.tbl.id, uint64(w.oid), w.key, w.newV.Data)
	case recDelete:
		return appendDelete(buf, w.tbl.id, uint64(w.oid))
	default:
		return appendUpdate(buf, w.tbl.id, uint64(w.oid), w.newV.Data)
	}
}
