package core

import (
	"errors"
	"fmt"

	"ermia/internal/engine"
	"ermia/internal/wal"
)

// This file is the fault-containment layer: a log-device failure costs write
// availability, not the whole database. ERMIA's redo-only log holds only
// committed state (§3.7), and the version chains the log describes live in
// memory — so when the device dies, reads keep running against intact
// in-memory state while updates (which must reach the log to commit) are
// refused with engine.ErrReadOnlyDegraded until Reattach heals the log.

// Health implements engine.HealthReporter.
func (db *DB) Health() engine.HealthStatus {
	s := engine.HealthState(db.health.Load())
	var cause error
	if p := db.healthCause.Load(); p != nil {
		cause = *p
	}
	return engine.HealthStatus{State: s, Cause: cause}
}

// noteLogErr records a log-layer failure in the health state machine and
// returns err unchanged. Device faults take Healthy to Degraded; a closed
// log means shutdown, which is Failed; ErrTooLarge is the caller's problem
// and moves nothing.
func (db *DB) noteLogErr(err error) error {
	switch {
	case err == nil, errors.Is(err, wal.ErrTooLarge):
		return err
	case errors.Is(err, wal.ErrClosed):
		db.health.CompareAndSwap(int32(engine.Healthy), int32(engine.Failed))
		db.health.CompareAndSwap(int32(engine.Degraded), int32(engine.Failed))
		return err
	}
	e := err
	db.healthCause.CompareAndSwap(nil, &e)
	db.health.CompareAndSwap(int32(engine.Healthy), int32(engine.Degraded))
	return err
}

// updateUnavailable converts a log failure into the typed availability error
// an update transaction surfaces: the transaction is not retryable against a
// degraded DB, and the caller should observe Health and Reattach.
func (db *DB) updateUnavailable(err error) error {
	db.noteLogErr(err)
	if engine.HealthState(db.health.Load()) == engine.Degraded {
		return fmt.Errorf("%w (cause: %v)", engine.ErrReadOnlyDegraded, err)
	}
	return err
}

// checkWritable refuses mutating operations unless the DB is Healthy. Reads
// never come here: SI reads stay serviceable in every state that leaves the
// process alive.
func (t *Txn) checkWritable() error {
	switch engine.HealthState(t.db.health.Load()) {
	case engine.Healthy:
		return nil
	case engine.Degraded:
		return engine.ErrReadOnlyDegraded
	case engine.Replica:
		return engine.ErrReplicaReadOnly
	default:
		return wal.ErrClosed
	}
}

// Reattach heals a Degraded DB once the log device works again, or has been
// replaced by st (nil keeps the current device; a non-nil replacement must
// hold the durable segment files). It quiesces log writers, delegates the
// log repair to wal.Manager.Reattach — which replays still-buffered
// committed work or reports it lost — and returns the DB to Healthy. Every
// commit acknowledged durable before the fault is preserved in either case.
//
// If the repair itself fails the DB moves to Failed: the instance must be
// replaced via Recover.
func (db *DB) Reattach(st wal.Storage) (*wal.ReattachReport, error) {
	// Writers hold the gate read-locked across their log windows; taking it
	// exclusively guarantees no reservation is in flight while the log
	// rebuilds its horizons.
	db.logGate.Lock()
	defer db.logGate.Unlock()
	switch engine.HealthState(db.health.Load()) {
	case engine.Failed:
		return nil, fmt.Errorf("core: reattach failed instance: %w", wal.ErrClosed)
	case engine.Healthy:
		return nil, wal.ErrNotDegraded
	case engine.Replica:
		// A replica has no log of its own to heal; Promote is the only way
		// out of the Replica state.
		return nil, wal.ErrNotDegraded
	}
	rep, err := db.logMgr().Reattach(st)
	if err != nil {
		db.health.Store(int32(engine.Failed))
		return nil, err
	}
	if st != nil {
		// Checkpoints write their blobs to the same device.
		db.cfg.WAL.Storage = st
	}
	db.healthCause.Store(nil)
	db.health.Store(int32(engine.Healthy))
	return rep, nil
}

var _ engine.HealthReporter = (*DB)(nil)
