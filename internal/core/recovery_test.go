package core

import (
	"errors"
	"fmt"
	"testing"

	"ermia/internal/engine"
	"ermia/internal/wal"
)

func recoveryConfig(st wal.Storage) Config {
	return Config{WAL: wal.Config{SegmentSize: 1 << 18, BufferSize: 1 << 16, Storage: st}}
}

// expect checks that the recovered DB contains exactly want.
func expect(t *testing.T, db *DB, table string, want map[string]string) {
	t.Helper()
	tbl := db.OpenTable(table)
	if tbl == nil {
		t.Fatalf("table %q missing after recovery", table)
	}
	txn := db.Begin(0)
	defer txn.Abort()
	got := map[string]string{}
	if err := txn.Scan(tbl, nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestRecoveryBasic(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("users")
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("user-%03d", i), fmt.Sprintf("data-%d", i)
		put(t, db, tbl, k, v)
		want[k] = v
	}
	// Updates and deletes must replay too.
	txn := db.Begin(0)
	txn.Update(tbl, []byte("user-010"), []byte("updated"))
	txn.Delete(tbl, []byte("user-020"))
	mustCommit(t, txn)
	want["user-010"] = "updated"
	delete(want, "user-020")

	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "users", want)

	// The recovered DB accepts new transactions.
	tbl2 := db2.OpenTable("users")
	put(t, db2, tbl2, "post-recovery", "new")
	txn = db2.Begin(0)
	if v, err := txn.Get(tbl2, []byte("post-recovery")); err != nil || string(v) != "new" {
		t.Fatalf("post-recovery write: %q %v", v, err)
	}
	txn.Abort()
}

func TestRecoveryAbortedTxnInvisible(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	put(t, db, tbl, "keep", "yes")

	txn := db.Begin(0)
	txn.Insert(tbl, []byte("dropme"), []byte("no"))
	txn.Abort()

	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "t", map[string]string{"keep": "yes"})
}

func TestRecoveryAfterCrashLosesOnlyTail(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	for i := 0; i < 20; i++ {
		put(t, db, tbl, fmt.Sprintf("k%02d", i), "v")
	}
	db.WaitDurable() // first 20 are durable
	for i := 20; i < 40; i++ {
		put(t, db, tbl, fmt.Sprintf("k%02d", i), "v")
	}
	crashed := st.Crash() // tail may be lost
	db.Close()

	db2, err := Recover(recoveryConfig(crashed))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2 := db2.OpenTable("t")
	txn := db2.Begin(0)
	defer txn.Abort()
	n := 0
	txn.Scan(tbl2, nil, nil, func(k, v []byte) bool { n++; return true })
	if n < 20 {
		t.Fatalf("recovered %d records, durable prefix was 20: lost committed work", n)
	}
	if n > 40 {
		t.Fatalf("recovered %d records from 40 written", n)
	}
	// The prefix property: recovered records are exactly k00..k(n-1).
	for i := 0; i < n; i++ {
		if _, err := txn.Get(tbl2, []byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatalf("hole in recovered prefix at %d of %d", i, n)
		}
	}
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	want := map[string]string{}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("pre-%02d", i)
		put(t, db, tbl, k, "v1")
		want[k] = "v1"
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity: updates of checkpointed rows, new inserts,
	// deletes of checkpointed rows.
	txn := db.Begin(0)
	txn.Update(tbl, []byte("pre-05"), []byte("v2"))
	txn.Delete(tbl, []byte("pre-07"))
	txn.Insert(tbl, []byte("post-00"), []byte("new"))
	mustCommit(t, txn)
	want["pre-05"] = "v2"
	delete(want, "pre-07")
	want["post-00"] = "new"

	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "t", want)
}

func TestRecoveryMultipleCheckpoints(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	want := map[string]string{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			k := fmt.Sprintf("r%d-k%d", round, i)
			put(t, db, tbl, k, fmt.Sprintf("v%d", round))
			want[k] = fmt.Sprintf("v%d", round)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	put(t, db, tbl, "final", "x")
	want["final"] = "x"
	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "t", want)
}

func TestRecoveryPerOpLogging(t *testing.T) {
	st := wal.NewMemStorage()
	cfg := recoveryConfig(st)
	cfg.LogPerOperation = true
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	want := map[string]string{}
	for i := 0; i < 10; i++ {
		txn := db.Begin(0)
		for j := 0; j < 3; j++ {
			k := fmt.Sprintf("t%d-k%d", i, j)
			if err := txn.Insert(tbl, []byte(k), []byte("v")); err != nil {
				t.Fatal(err)
			}
			want[k] = "v"
		}
		mustCommit(t, txn)
	}
	// An aborted per-op transaction leaves chain blocks that must not
	// replay.
	txn := db.Begin(0)
	txn.Insert(tbl, []byte("aborted"), []byte("x"))
	txn.Abort()

	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "t", want)
}

func TestRecoveryOverflowChain(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	// One transaction whose write footprint exceeds MaxPayload, forcing
	// overflow spills.
	big := make([]byte, 1200)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	txn := db.Begin(0)
	want := map[string]string{}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("big-%02d", i)
		if err := txn.Insert(tbl, []byte(k), big); err != nil {
			t.Fatal(err)
		}
		want[k] = string(big)
	}
	mustCommit(t, txn)
	if db.Log().Stats().Reservations < 2 {
		t.Skip("footprint did not overflow; adjust sizes")
	}
	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "t", want)
}

func TestRecoveryMultipleTables(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	a := db.CreateTable("alpha")
	b := db.CreateTable("beta")
	put(t, db, a, "k", "in-alpha")
	put(t, db, b, "k", "in-beta")
	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "alpha", map[string]string{"k": "in-alpha"})
	expect(t, db2, "beta", map[string]string{"k": "in-beta"})
}

func TestRecoveryEmptyLog(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := db.CreateTable("t")
	put(t, db, tbl, "k", "v")
	txn := db.Begin(0)
	if v, err := txn.Get(tbl, []byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("fresh recovered db: %q %v", v, err)
	}
	txn.Abort()
}

func TestRecoverySurvivesSegmentRotation(t *testing.T) {
	st := wal.NewMemStorage()
	cfg := Config{WAL: wal.Config{SegmentSize: 8 << 10, BufferSize: 4 << 10, Storage: st}}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	want := map[string]string{}
	val := string(make([]byte, 300))
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%04d", i)
		put(t, db, tbl, k, val)
		want[k] = val
	}
	if db.Log().Stats().SegmentOpens < 3 {
		t.Fatalf("only %d segment opens; rotation not exercised", db.Log().Stats().SegmentOpens)
	}
	db.WaitDurable()
	db.Close()

	db2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "t", want)
}

func TestRecoverRequiresStorage(t *testing.T) {
	if _, err := Recover(Config{}); err == nil {
		t.Fatal("Recover with no storage should fail")
	}
}

func TestDeletedThenReinsertedSurvivesRecovery(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	put(t, db, tbl, "k", "v1")
	txn := db.Begin(0)
	txn.Delete(tbl, []byte("k"))
	mustCommit(t, txn)
	txn = db.Begin(0)
	if err := txn.Insert(tbl, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)
	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "t", map[string]string{"k": "v2"})
}

func TestRecoveredDataNotFoundSemantics(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	put(t, db, tbl, "alive", "v")
	txn := db.Begin(0)
	txn.Insert(tbl, []byte("dead"), []byte("v"))
	mustCommit(t, txn)
	txn = db.Begin(0)
	txn.Delete(tbl, []byte("dead"))
	mustCommit(t, txn)
	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2 := db2.OpenTable("t")
	txn = db2.Begin(0)
	defer txn.Abort()
	if _, err := txn.Get(tbl2, []byte("dead")); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("deleted record after recovery: %v", err)
	}
}
