package core

import (
	"errors"
	"fmt"
	"testing"

	"ermia/internal/engine"
	"ermia/internal/wal"
)

func TestSecondaryIndexBasic(t *testing.T) {
	db := testDB(t, false)
	users := db.CreateTable("users")
	byEmail := db.CreateSecondaryIndex(users, "users_by_email")

	txn := db.BeginTxn(0)
	err := txn.InsertWithSecondary(users, []byte("u1"), []byte("alice-data"),
		[]SecondaryEntry{{Index: byEmail, Key: []byte("alice@example.com")}})
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)

	txn = db.BeginTxn(0)
	defer txn.Abort()
	// Secondary lookup reaches the record with no primary probe.
	v, err := txn.GetBySecondary(byEmail, []byte("alice@example.com"))
	if err != nil || string(v) != "alice-data" {
		t.Fatalf("GetBySecondary: %q %v", v, err)
	}
	if _, err := txn.GetBySecondary(byEmail, []byte("nobody@example.com")); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("missing secondary key: %v", err)
	}
}

// The paper's headline property: updates are absorbed by the indirection
// array, so neither index sees them.
func TestSecondaryIndexIsolatedFromUpdates(t *testing.T) {
	db := testDB(t, false)
	users := db.CreateTable("users")
	byEmail := db.CreateSecondaryIndex(users, "by_email")

	txn := db.BeginTxn(0)
	if err := txn.InsertWithSecondary(users, []byte("u1"), []byte("v0"),
		[]SecondaryEntry{{Index: byEmail, Key: []byte("a@x")}}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)
	usersT := users.(*Table)
	primLen, secLen := usersT.Len(), byEmail.Len()

	for i := 1; i <= 50; i++ {
		txn := db.BeginTxn(0)
		if err := txn.Update(users, []byte("u1"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, txn)
	}
	if usersT.Len() != primLen || byEmail.Len() != secLen {
		t.Fatalf("index sizes changed under updates: primary %d->%d secondary %d->%d",
			primLen, usersT.Len(), secLen, byEmail.Len())
	}
	// The secondary path serves the newest version.
	txn = db.BeginTxn(0)
	defer txn.Abort()
	if v, _ := txn.GetBySecondary(byEmail, []byte("a@x")); string(v) != "v50" {
		t.Fatalf("secondary read after updates: %q", v)
	}
}

func TestSecondaryIndexSeesSnapshots(t *testing.T) {
	db := testDB(t, false)
	users := db.CreateTable("users")
	byEmail := db.CreateSecondaryIndex(users, "by_email")
	txn := db.BeginTxn(0)
	txn.InsertWithSecondary(users, []byte("u1"), []byte("old"),
		[]SecondaryEntry{{Index: byEmail, Key: []byte("a@x")}})
	mustCommit(t, txn)

	reader := db.BeginTxn(0)
	if v, _ := reader.GetBySecondary(byEmail, []byte("a@x")); string(v) != "old" {
		t.Fatal("setup")
	}
	writer := db.BeginTxn(1)
	writer.Update(users, []byte("u1"), []byte("new"))
	mustCommit(t, writer)
	// The reader's snapshot is stable through the secondary path too.
	if v, _ := reader.GetBySecondary(byEmail, []byte("a@x")); string(v) != "old" {
		t.Fatal("secondary read moved with concurrent commit")
	}
	reader.Abort()
}

func TestSecondaryIndexDelete(t *testing.T) {
	db := testDB(t, false)
	users := db.CreateTable("users")
	byEmail := db.CreateSecondaryIndex(users, "by_email")
	txn := db.BeginTxn(0)
	txn.InsertWithSecondary(users, []byte("u1"), []byte("v"),
		[]SecondaryEntry{{Index: byEmail, Key: []byte("a@x")}})
	mustCommit(t, txn)

	txn = db.BeginTxn(0)
	if err := txn.Delete(users, []byte("u1")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, txn)

	txn = db.BeginTxn(0)
	defer txn.Abort()
	if _, err := txn.GetBySecondary(byEmail, []byte("a@x")); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("deleted record via secondary: %v", err)
	}
	n := 0
	txn.ScanSecondary(byEmail, nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("secondary scan saw %d deleted records", n)
	}
}

func TestSecondaryScanOrder(t *testing.T) {
	db := testDB(t, false)
	users := db.CreateTable("users")
	byName := db.CreateSecondaryIndex(users, "by_name")
	names := []string{"carol", "alice", "bob", "dave"}
	for i, name := range names {
		txn := db.BeginTxn(0)
		err := txn.InsertWithSecondary(users, []byte(fmt.Sprintf("u%d", i)),
			[]byte("data-"+name), []SecondaryEntry{{Index: byName, Key: []byte(name)}})
		if err != nil {
			t.Fatal(err)
		}
		mustCommit(t, txn)
	}
	txn := db.BeginTxn(0)
	defer txn.Abort()
	var got []string
	txn.ScanSecondary(byName, nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"alice", "bob", "carol", "dave"}
	if len(got) != len(want) {
		t.Fatalf("scan: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("secondary order: %v", got)
		}
	}
}

func TestSecondaryDuplicateKeyRejected(t *testing.T) {
	db := testDB(t, false)
	users := db.CreateTable("users")
	byEmail := db.CreateSecondaryIndex(users, "by_email")
	txn := db.BeginTxn(0)
	txn.InsertWithSecondary(users, []byte("u1"), []byte("v"),
		[]SecondaryEntry{{Index: byEmail, Key: []byte("same@x")}})
	mustCommit(t, txn)

	txn = db.BeginTxn(0)
	err := txn.InsertWithSecondary(users, []byte("u2"), []byte("v"),
		[]SecondaryEntry{{Index: byEmail, Key: []byte("same@x")}})
	if !errors.Is(err, engine.ErrDuplicate) {
		t.Fatalf("duplicate live secondary key: %v", err)
	}
	txn.Abort()
}

func TestSecondaryWrongTableRejected(t *testing.T) {
	db := testDB(t, false)
	a := db.CreateTable("a")
	bTbl := db.CreateTable("b")
	idx := db.CreateSecondaryIndex(a, "on_a")
	txn := db.BeginTxn(0)
	defer txn.Abort()
	err := txn.InsertWithSecondary(bTbl, []byte("k"), []byte("v"),
		[]SecondaryEntry{{Index: idx, Key: []byte("s")}})
	if err == nil {
		t.Fatal("cross-table secondary entry accepted")
	}
}

func TestSecondaryAbortLeavesNoVisibleBinding(t *testing.T) {
	db := testDB(t, false)
	users := db.CreateTable("users")
	byEmail := db.CreateSecondaryIndex(users, "by_email")
	txn := db.BeginTxn(0)
	txn.InsertWithSecondary(users, []byte("u1"), []byte("doomed"),
		[]SecondaryEntry{{Index: byEmail, Key: []byte("a@x")}})
	txn.Abort()

	txn = db.BeginTxn(0)
	defer txn.Abort()
	if _, err := txn.GetBySecondary(byEmail, []byte("a@x")); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("aborted insert visible via secondary: %v", err)
	}
}

func TestSecondaryRecovery(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	users := db.CreateTable("users")
	byEmail := db.CreateSecondaryIndex(users, "by_email")
	for i := 0; i < 20; i++ {
		txn := db.BeginTxn(0)
		err := txn.InsertWithSecondary(users, []byte(fmt.Sprintf("u%02d", i)),
			[]byte(fmt.Sprintf("data%d", i)),
			[]SecondaryEntry{{Index: byEmail, Key: []byte(fmt.Sprintf("mail%02d@x", i))}})
		if err != nil {
			t.Fatal(err)
		}
		mustCommit(t, txn)
	}
	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	byEmail2 := db2.OpenSecondaryIndex("by_email")
	if byEmail2 == nil {
		t.Fatal("secondary index missing after recovery")
	}
	txn := db2.BeginTxn(0)
	defer txn.Abort()
	for i := 0; i < 20; i++ {
		v, err := txn.GetBySecondary(byEmail2, []byte(fmt.Sprintf("mail%02d@x", i)))
		if err != nil || string(v) != fmt.Sprintf("data%d", i) {
			t.Fatalf("entry %d after recovery: %q %v", i, v, err)
		}
	}
}

func TestSecondaryRecoveryWithCheckpoint(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	users := db.CreateTable("users")
	byEmail := db.CreateSecondaryIndex(users, "by_email")
	ins := func(i int) {
		txn := db.BeginTxn(0)
		if err := txn.InsertWithSecondary(users, []byte(fmt.Sprintf("u%02d", i)),
			[]byte(fmt.Sprintf("data%d", i)),
			[]SecondaryEntry{{Index: byEmail, Key: []byte(fmt.Sprintf("m%02d", i))}}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, txn)
	}
	for i := 0; i < 10; i++ {
		ins(i)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		ins(i) // post-checkpoint inserts replay from the log
	}
	db.WaitDurable()
	db.Close()

	db2, err := Recover(recoveryConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	byEmail2 := db2.OpenSecondaryIndex("by_email")
	txn := db2.BeginTxn(0)
	defer txn.Abort()
	for i := 0; i < 15; i++ {
		v, err := txn.GetBySecondary(byEmail2, []byte(fmt.Sprintf("m%02d", i)))
		if err != nil || string(v) != fmt.Sprintf("data%d", i) {
			t.Fatalf("entry %d: %q %v", i, v, err)
		}
	}
}

func TestSecondaryPhantomProtection(t *testing.T) {
	db := testDB(t, true)
	users := db.CreateTable("users")
	byName := db.CreateSecondaryIndex(users, "by_name")
	for i := 0; i < 5; i++ {
		txn := db.BeginTxn(0)
		txn.InsertWithSecondary(users, []byte(fmt.Sprintf("u%d", i)),
			[]byte("v"), []SecondaryEntry{{Index: byName, Key: []byte(fmt.Sprintf("n%d", i))}})
		mustCommit(t, txn)
	}
	scanner := db.BeginTxn(0)
	scanner.ScanSecondary(byName, []byte("n0"), []byte("n9"), func(k, v []byte) bool { return true })
	if err := scanner.Update(users, []byte("u0"), []byte("marked")); err != nil {
		t.Fatal(err)
	}
	// A phantom arrives in the scanned secondary range.
	other := db.BeginTxn(1)
	other.InsertWithSecondary(users, []byte("u5x"), []byte("v"),
		[]SecondaryEntry{{Index: byName, Key: []byte("n2x")}})
	mustCommit(t, other)

	if err := scanner.Commit(); !errors.Is(err, engine.ErrPhantom) {
		t.Fatalf("secondary phantom: %v", err)
	}
}
