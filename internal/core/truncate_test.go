package core

import (
	"fmt"
	"strings"
	"testing"

	"ermia/internal/wal"
)

// TestTruncateLogAfterCheckpoint: segments before the checkpoint go away
// and the database still recovers completely.
func TestTruncateLogAfterCheckpoint(t *testing.T) {
	st := wal.NewMemStorage()
	cfg := Config{WAL: wal.Config{SegmentSize: 8 << 10, BufferSize: 4 << 10, Storage: st}}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	want := map[string]string{}
	val := strings.Repeat("x", 300)
	// Fill several 8KiB segments.
	for i := 0; i < 150; i++ {
		k := fmt.Sprintf("k%04d", i)
		put(t, db, tbl, k, val)
		want[k] = val
	}
	if db.Log().Stats().SegmentOpens < 4 {
		t.Fatalf("only %d segment opens", db.Log().Stats().SegmentOpens)
	}
	before, _ := st.List()

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	removed, err := db.TruncateLog()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Fatal("nothing truncated despite multiple full segments")
	}
	after, _ := st.List()
	if len(after) >= len(before)+2 { // +ckpt blob, -removed segments
		t.Fatalf("file count did not shrink: %d -> %d", len(before), len(after))
	}

	// Post-checkpoint writes land in the surviving tail.
	put(t, db, tbl, "post", "truncate")
	want["post"] = "truncate"
	db.WaitDurable()
	db.Close()

	db2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	expect(t, db2, "t", want)
}

// TestTruncateWithoutCheckpointIsNoop guards against deleting a log that is
// still the only copy of the data.
func TestTruncateWithoutCheckpointIsNoop(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(Config{WAL: wal.Config{SegmentSize: 8 << 10, BufferSize: 4 << 10, Storage: st}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := db.CreateTable("t")
	for i := 0; i < 100; i++ {
		put(t, db, tbl, fmt.Sprintf("k%03d", i), strings.Repeat("y", 300))
	}
	removed, err := db.TruncateLog()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("truncated %v without a checkpoint", removed)
	}
}

// TestTruncateKeepsTailSegments: the segment containing the checkpoint
// marker (and everything after) survives.
func TestTruncateKeepsTail(t *testing.T) {
	st := wal.NewMemStorage()
	cfg := Config{WAL: wal.Config{SegmentSize: 8 << 10, BufferSize: 4 << 10, Storage: st}}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	for i := 0; i < 80; i++ {
		put(t, db, tbl, fmt.Sprintf("k%03d", i), strings.Repeat("z", 300))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.TruncateLog(); err != nil {
		t.Fatal(err)
	}
	// A second truncation finds nothing new.
	removed, err := db.TruncateLog()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("second truncate removed %v", removed)
	}
	db.Close()

	// Recovery must still see the checkpoint-end record.
	db2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	txn := db2.BeginTxn(0)
	defer txn.Abort()
	n := 0
	txn.Scan(db2.OpenTable("t"), nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 80 {
		t.Fatalf("recovered %d of 80 after truncation", n)
	}
}
