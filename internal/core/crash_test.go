package core

import (
	"fmt"
	"testing"

	"ermia/internal/faultfs"
	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// TestCrashRecoveryPrefixConsistency is a randomized crash property test
// built on the faultfs harness: run a randomized single-stream workload with
// the normal background flusher, record the storage trace, then crash at
// several seeded trace points (including seeded torn writes) and require the
// recovered state to equal EXACTLY the state after some prefix of the
// committed transactions. This is the §3.7 guarantee — "the log can be
// truncated at the first hole without losing any committed work" — plus
// atomicity: no transaction may be half-recovered.
//
// Unlike TestCrashPointSweep (which sweeps every boundary of a deterministic
// SyncFlush trace), this test runs the concurrent flusher, so the trace
// varies run to run; each point is still checked against the trace actually
// recorded.
func TestCrashRecoveryPrefixConsistency(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := xrand.New2(uint64(trial), 0xC4A5)
			rec := faultfs.NewRecorder(wal.NewMemStorage())
			cfg := Config{WAL: wal.Config{SegmentSize: 16 << 10, BufferSize: 8 << 10, Storage: rec}}
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tbl := db.CreateTable("t")

			// states[i] is the expected contents after i committed txns.
			model := map[string]string{}
			states := []map[string]string{copyMap(model)}
			var acks []ackPoint

			nTxns := 50 + rng.Intn(150)
			syncEvery := 10 + rng.Intn(30)
			for i := 0; i < nTxns; i++ {
				txn := db.BeginTxn(0)
				staged := copyMap(model)
				nOps := 1 + rng.Intn(4)
				ok := true
				for j := 0; j < nOps && ok; j++ {
					key := fmt.Sprintf("k%02d", rng.Intn(30))
					val := fmt.Sprintf("t%d-o%d", i, j)
					switch rng.Intn(3) {
					case 0: // upsert
						if _, exists := staged[key]; exists {
							ok = txn.Update(tbl, []byte(key), []byte(val)) == nil
						} else {
							ok = txn.Insert(tbl, []byte(key), []byte(val)) == nil
						}
						if ok {
							staged[key] = val
						}
					case 1: // delete if present
						if _, exists := staged[key]; exists {
							ok = txn.Delete(tbl, []byte(key)) == nil
							delete(staged, key)
						}
					default: // read (no state change)
						txn.Get(tbl, []byte(key))
					}
				}
				if !ok {
					txn.Abort()
					t.Fatalf("txn %d: unexpected op failure", i)
				}
				// A few transactions abort on purpose: they must leave no
				// trace in any recovered state.
				if rng.Intn(10) == 0 {
					txn.Abort()
				} else if err := txn.Commit(); err != nil {
					t.Fatalf("txn %d commit: %v", i, err)
				} else {
					model = staged
					states = append(states, copyMap(model))
				}
				if i%syncEvery == syncEvery-1 {
					if err := db.WaitDurable(); err != nil {
						t.Fatal(err)
					}
					acks = append(acks, ackPoint{len(rec.Ops()), len(states) - 1})
				}
			}
			if err := db.WaitDurable(); err != nil {
				t.Fatal(err)
			}
			acks = append(acks, ackPoint{len(rec.Ops()), len(states) - 1})
			db.Close()
			tr := rec.Ops()

			// Crash at several seeded points of the recorded trace: the full
			// trace, and a handful of interior and torn points.
			points := []faultfs.Point{{Index: len(tr)}}
			prng := xrand.New2(uint64(trial), 0xFA11)
			for n := 0; n < 5; n++ {
				k := int(prng.Uint64n(uint64(len(tr)) + 1))
				p := faultfs.Point{Index: k}
				if k < len(tr) && tr[k].Kind == faultfs.OpWrite && len(tr[k].Data) > 0 && n%2 == 1 {
					p.Torn = true
					p.TornLen = faultfs.TornLen(uint64(trial), k, len(tr[k].Data))
				}
				points = append(points, p)
			}

			for _, p := range points {
				img, err := faultfs.CrashImage(tr, p)
				if err != nil {
					t.Fatalf("trial %d, %v: %v", trial, p, err)
				}
				db2, err := Recover(Config{WAL: wal.Config{
					SegmentSize: 16 << 10, BufferSize: 8 << 10, Storage: img}})
				if err != nil {
					t.Fatalf("trial %d, %v: recovery: %v", trial, p, err)
				}

				got := map[string]string{}
				if tbl2 := db2.OpenTable("t"); tbl2 != nil {
					txn := db2.BeginTxn(0)
					if err := txn.Scan(tbl2, nil, nil, func(k, v []byte) bool {
						got[string(k)] = string(v)
						return true
					}); err != nil {
						t.Fatal(err)
					}
					txn.Abort()
				}
				db2.Close()

				// The recovered state must match a committed prefix at or
				// past the acknowledged-durable floor.
				match := -1
				for i := len(states) - 1; i >= 0; i-- {
					if mapsEqual(got, states[i]) {
						match = i
						break
					}
				}
				if match < 0 {
					t.Fatalf("trial %d, %v: recovered state matches no committed prefix:\ngot: %v\nfinal: %v",
						trial, p, got, model)
				}
				if floor := ackFloor(acks, p.Index); match < floor {
					t.Fatalf("trial %d, %v: recovered prefix %d < acked floor %d", trial, p, match, floor)
				}
				t.Logf("trial %d: %v -> prefix %d/%d (floor %d)",
					trial, p, match, len(states)-1, ackFloor(acks, p.Index))
			}
		})
	}
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
