package core

import (
	"fmt"
	"testing"

	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// TestCrashRecoveryPrefixConsistency is a crash-point property test: run a
// randomized single-stream workload, crash at an arbitrary moment (dropping
// everything not yet synced), recover, and require the recovered state to
// equal EXACTLY the state after some prefix of the committed transactions.
// This is the §3.7 guarantee — "the log can be truncated at the first hole
// without losing any committed work" — plus atomicity: no transaction may
// be half-recovered.
func TestCrashRecoveryPrefixConsistency(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := xrand.New2(uint64(trial), 0xC4A5)
			st := wal.NewMemStorage()
			cfg := Config{WAL: wal.Config{SegmentSize: 16 << 10, BufferSize: 8 << 10, Storage: st}}
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tbl := db.CreateTable("t")

			// states[i] is the expected contents after i committed txns.
			model := map[string]string{}
			states := []map[string]string{copyMap(model)}

			nTxns := 50 + rng.Intn(150)
			crashAfter := rng.Intn(nTxns) // sync point somewhere inside
			for i := 0; i < nTxns; i++ {
				txn := db.BeginTxn(0)
				staged := copyMap(model)
				nOps := 1 + rng.Intn(4)
				ok := true
				for j := 0; j < nOps && ok; j++ {
					key := fmt.Sprintf("k%02d", rng.Intn(30))
					val := fmt.Sprintf("t%d-o%d", i, j)
					switch rng.Intn(3) {
					case 0: // upsert
						if _, exists := staged[key]; exists {
							ok = txn.Update(tbl, []byte(key), []byte(val)) == nil
						} else {
							ok = txn.Insert(tbl, []byte(key), []byte(val)) == nil
						}
						if ok {
							staged[key] = val
						}
					case 1: // delete if present
						if _, exists := staged[key]; exists {
							ok = txn.Delete(tbl, []byte(key)) == nil
							delete(staged, key)
						}
					default: // read (no state change)
						txn.Get(tbl, []byte(key))
					}
				}
				if !ok {
					txn.Abort()
					t.Fatalf("txn %d: unexpected op failure", i)
				}
				// A few transactions abort on purpose: they must leave no
				// trace in any recovered state.
				if rng.Intn(10) == 0 {
					txn.Abort()
				} else if err := txn.Commit(); err != nil {
					t.Fatalf("txn %d commit: %v", i, err)
				} else {
					model = staged
					states = append(states, copyMap(model))
				}
				if i == crashAfter {
					if err := db.WaitDurable(); err != nil {
						t.Fatal(err)
					}
				}
			}
			durableStates := len(states) // lower bound known only at sync point

			crashed := st.Crash()
			db.Close()

			db2, err := Recover(Config{WAL: wal.Config{
				SegmentSize: 16 << 10, BufferSize: 8 << 10, Storage: crashed}})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()

			got := map[string]string{}
			txn := db2.BeginTxn(0)
			if err := txn.Scan(db2.OpenTable("t"), nil, nil, func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			txn.Abort()

			// The recovered state must match one of the committed prefixes.
			match := -1
			for i, s := range states {
				if mapsEqual(got, s) {
					match = i
					break
				}
			}
			if match < 0 {
				t.Fatalf("recovered state matches no committed prefix:\ngot: %v\nfinal: %v", got, model)
			}
			t.Logf("trial %d: %d commits, recovered prefix %d/%d (durable bound %d)",
				trial, len(states)-1, match, len(states)-1, durableStates-1)
		})
	}
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
