package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"ermia/internal/wal"
)

// FuzzDecodeRecord throws arbitrary bytes at the commit-block record parser.
// Crash recovery hands decodeRecords whatever the WAL framing layer yields,
// and the faultfs sweep shows torn writes can truncate a payload anywhere, so
// the parser must reject malformed input with an error — never panic, never
// read out of bounds, and never loop forever. The seed corpus covers every
// record kind, built with the real encoders so mutation starts from valid
// frames.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(encodeCreateTable(1, "orders"))
	f.Add(encodeCreateIndex(2, 1, "orders-by-customer"))
	f.Add(appendInsert(nil, 1, 42, []byte("key-1"), []byte("value-1")))
	f.Add(appendUpdate(nil, 1, 42, []byte("value-2")))
	f.Add(appendDelete(nil, 1, 42))
	f.Add(appendInsertSec(nil, 1, 43, []byte("key-2"), []byte("value-3"),
		[]loggedSecondary{{index: 2, key: []byte("sk-2")}}))
	// A whole commit-block payload: several records back to back, as the
	// transaction's private log buffer lays them out.
	multi := encodeCreateTable(3, "stock")
	multi = appendInsert(multi, 3, 7, []byte("s1"), []byte("qty=10"))
	multi = appendUpdate(multi, 3, 7, []byte("qty=9"))
	multi = appendDelete(multi, 3, 7)
	f.Add(multi)
	// Known-hostile shapes: truncated header, huge declared lengths, an
	// unknown kind, a secondary count with no entries behind it.
	f.Add([]byte{recInsert, 0xFF, 0xFF})
	f.Add([]byte{recUpdate, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{0x7F})
	f.Add([]byte{recInsertSec, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		seen := 0
		err := decodeRecords(data, func(r logRecord) error {
			seen++
			// Every record the parser surfaces must have in-bounds slices;
			// touching them here turns a bad slice header into a failure.
			_ = len(r.key) + len(r.val)
			for _, s := range r.sec {
				_ = len(s.key)
			}
			switch r.kind {
			case recCreateTable, recInsert, recUpdate, recDelete, recCreateIndex, recInsertSec:
			default:
				t.Fatalf("parser surfaced unknown kind %d", r.kind)
			}
			return nil
		})
		if err == nil && len(data) > 0 && seen == 0 {
			t.Fatal("non-empty payload decoded to zero records with no error")
		}
	})
}

// FuzzRecordRoundTrip encodes an insert-with-secondaries from fuzzer-chosen
// fields and requires decodeRecords to return exactly what went in. This
// pins the wire format: recovery rebuilds both the primary and the secondary
// index from these records, so a lossy encoding would silently corrupt
// recovered databases.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint64(42), []byte("k"), []byte("v"), []byte("sk"))
	f.Add(uint32(0), uint64(0), []byte{}, []byte{}, []byte{})
	f.Add(uint32(1<<31), uint64(1<<60), []byte{0, 0xFF}, make([]byte, 300), []byte("x"))
	f.Fuzz(func(t *testing.T, table uint32, oid uint64, key, val, skey []byte) {
		buf := appendInsertSec(nil, table, oid, key, val,
			[]loggedSecondary{{index: 9, key: skey}})
		buf = appendUpdate(buf, table, oid, val)
		buf = appendDelete(buf, table, oid)

		var got []logRecord
		if err := decodeRecords(buf, func(r logRecord) error {
			// The parser's slices alias buf; copy so later records can't
			// share storage surprises with earlier ones.
			r.key = append([]byte(nil), r.key...)
			r.val = append([]byte(nil), r.val...)
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("decode of freshly encoded records failed: %v", err)
		}
		if len(got) != 3 {
			t.Fatalf("decoded %d records, want 3", len(got))
		}
		ins := got[0]
		if ins.kind != recInsertSec || ins.table != table || ins.oid != oid ||
			string(ins.key) != string(key) || string(ins.val) != string(val) {
			t.Fatalf("insert did not round-trip: %+v", ins)
		}
		if len(ins.sec) != 1 || ins.sec[0].index != 9 || string(ins.sec[0].key) != string(skey) {
			t.Fatalf("secondary binding did not round-trip: %+v", ins.sec)
		}
		if up := got[1]; up.kind != recUpdate || up.table != table || up.oid != oid || string(up.val) != string(val) {
			t.Fatalf("update did not round-trip: %+v", up)
		}
		if del := got[2]; del.kind != recDelete || del.table != table || del.oid != oid {
			t.Fatalf("delete did not round-trip: %+v", del)
		}
	})
}

// fuzzSeedSegment builds a valid one-segment image — commits, a checkpoint
// record pair, more commits — and returns the segment's name and bytes. The
// checkpoint blob is deliberately not carried into the fuzz storage, so the
// checkpoint-fallback path runs on every input too.
func fuzzSeedSegment(f *testing.F) (string, []byte) {
	st := wal.NewMemStorage()
	db, err := Open(sweepConfig(st))
	if err != nil {
		f.Fatal(err)
	}
	tbl := db.CreateTable("t")
	ins := func(k, v string) {
		txn := db.Begin(0)
		if err := txn.Insert(tbl, []byte(k), []byte(v)); err != nil {
			f.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			f.Fatal(err)
		}
	}
	ins("a", "1")
	ins("b", "2")
	if err := db.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	ins("c", "3")
	txn := db.Begin(0)
	if err := txn.Delete(tbl, []byte("a")); err != nil {
		f.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		f.Fatal(err)
	}
	if err := db.WaitDurable(); err != nil {
		f.Fatal(err)
	}
	db.Close()

	img := st.Crash()
	names, err := img.List()
	if err != nil {
		f.Fatal(err)
	}
	for _, n := range names {
		if len(n) < 4 || n[:4] != "log-" {
			continue
		}
		fl, err := img.Open(n)
		if err != nil {
			f.Fatal(err)
		}
		size, err := fl.Size()
		if err != nil {
			f.Fatal(err)
		}
		data := make([]byte, size)
		if _, err := fl.ReadAt(data, 0); err != nil && err != io.EOF {
			f.Fatal(err)
		}
		fl.Close()
		return n, data
	}
	f.Fatal("no segment file in seed image")
	return "", nil
}

// fuzzCkptWorkload commits a small history with one mid-stream checkpoint
// and returns the durable image, the published blob's name and bytes, and
// the expected final state. Shared by FuzzCheckpointBlob's two entry points.
func fuzzCkptWorkload(f *testing.F) (*wal.MemStorage, string, []byte, map[string]string) {
	st := wal.NewMemStorage()
	db, err := Open(sweepConfig(st))
	if err != nil {
		f.Fatal(err)
	}
	tbl := db.CreateTable("t")
	si := db.CreateSecondaryIndex(tbl, "t-by-sk")
	ins := func(k, v string) {
		txn := db.BeginTxn(0)
		err := txn.InsertWithSecondary(tbl, []byte(k), []byte(v),
			[]SecondaryEntry{{Index: si, Key: skeyFor(k)}})
		if err != nil {
			f.Fatal(err)
		}
		if err := txn.Commit(); err != nil {
			f.Fatal(err)
		}
	}
	ins("a", "1")
	ins("b", "2")
	if err := db.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	ins("c", "3")
	txn := db.Begin(0)
	if err := txn.Delete(tbl, []byte("a")); err != nil {
		f.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		f.Fatal(err)
	}
	if err := db.WaitDurable(); err != nil {
		f.Fatal(err)
	}
	db.Close()

	img := st.Crash()
	names, err := img.List()
	if err != nil {
		f.Fatal(err)
	}
	for _, n := range names {
		if _, _, ok := parseCheckpointName(n); !ok {
			continue
		}
		fl, err := img.Open(n)
		if err != nil {
			f.Fatal(err)
		}
		size, err := fl.Size()
		if err != nil {
			f.Fatal(err)
		}
		blob := make([]byte, size)
		if _, err := fl.ReadAt(blob, 0); err != nil && err != io.EOF {
			f.Fatal(err)
		}
		fl.Close()
		return img, n, blob, map[string]string{"b": "2", "c": "3"}
	}
	f.Fatal("no published checkpoint blob in seed image")
	return nil, "", nil, nil
}

// blobChecksumOK reports whether an image would pass the FNV trailer check —
// the same verification readCheckpointBlob and SeedCheckpoint apply.
func blobChecksumOK(data []byte) bool {
	if len(data) < 4 {
		return false
	}
	return wal.Checksum(data[:len(data)-4]) == binary.LittleEndian.Uint32(data[len(data)-4:])
}

// FuzzCheckpointBlob throws mutated checkpoint images at both blob
// consumers. Recovery: a blob failing its checksum must be skipped — with
// the log intact, recovery then MUST succeed with the exact full-replay
// state, never adopt corrupt bytes. A checksum-valid mutant may recover or
// fail with a clean decode error, never panic. Replica seeding
// (SeedCheckpoint): a checksum-invalid or headerless image must be
// rejected; the pristine image must load the exact checkpoint state.
func FuzzCheckpointBlob(f *testing.F) {
	img, blobName, blob, want := fuzzCkptWorkload(f)

	f.Add(blob)
	f.Add(blob[:len(blob)/2])                  // truncated: checksum fails
	f.Add(blob[:checkpointHeaderSize])         // header only, no trailer
	flip := append([]byte(nil), blob...)       // body bit-flip: checksum fails
	flip[len(flip)/2] ^= 0x10
	f.Add(flip)
	tail := append([]byte(nil), blob...) // trailer bit-flip: checksum fails
	tail[len(tail)-1] ^= 0x01
	f.Add(tail)
	// Checksum-fixed mutants: verification passes, the decoder must cope.
	fixed := append([]byte(nil), blob...)
	fixed[checkpointHeaderSize+2] ^= 0x80 // damage the payload catalog
	binary.LittleEndian.PutUint32(fixed[len(fixed)-4:], wal.Checksum(fixed[:len(fixed)-4]))
	f.Add(fixed)
	// Minimal well-checksummed body declaring an absurd entry count: the
	// loader must hit its bounds check, not allocate for 2^64 entries.
	huge := appendCheckpointHeader(nil, 1, 64)
	huge = binary.LittleEndian.AppendUint32(huge, 0) // no tables
	huge = binary.LittleEndian.AppendUint32(huge, 0) // no indexes
	huge = binary.LittleEndian.AppendUint64(huge, ^uint64(0))
	huge = binary.LittleEndian.AppendUint32(huge, wal.Checksum(huge))
	f.Add(huge)
	v1 := append([]byte(nil), blob[checkpointHeaderSize:len(blob)-4]...) // headerless v1 shape
	v1 = binary.LittleEndian.AppendUint32(v1, wal.Checksum(v1))
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Recovery path: pristine log, mutated blob under the live name.
		st := img.Crash()
		if err := st.Remove(blobName); err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			fl, err := st.Create(blobName)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fl.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			fl.Sync()
			fl.Close()
		}
		db, err := Recover(sweepConfig(st))
		if !blobChecksumOK(data) {
			// The trailer check must route recovery around the bad blob and
			// full-log replay must reconstruct the exact committed state.
			if err != nil {
				t.Fatalf("recovery failed instead of ignoring a checksum-invalid blob: %v", err)
			}
			checkFuzzState(t, db, want)
		}
		if err == nil {
			db.Close()
		}

		// Seeding path: the image arrives over the wire into a fresh replica
		// (whose read snapshot is the watermark the seed publishes).
		db2, ap, _, err := OpenReplica(sweepConfig(wal.NewMemStorage()))
		if err != nil {
			t.Fatal(err)
		}
		_, serr := db2.SeedCheckpoint(data)
		if serr == nil && !blobChecksumOK(data) {
			t.Fatal("SeedCheckpoint accepted a checksum-invalid image")
		}
		if serr == nil && bytes.Equal(data, blob) {
			checkFuzzState(t, db2, map[string]string{"a": "1", "b": "2"})
		}
		ap.Close()
		db2.Close()
	})
}

// checkFuzzState asserts the database's table t holds exactly want, with
// every live key reachable through its secondary binding.
func checkFuzzState(t *testing.T, db *DB, want map[string]string) {
	t.Helper()
	tbl := db.OpenTable("t")
	si := db.OpenSecondaryIndex("t-by-sk")
	if tbl == nil || si == nil {
		t.Fatal("catalog not recovered")
	}
	txn := db.BeginTxn(0)
	defer txn.Abort()
	got := map[string]string{}
	if err := txn.Scan(tbl, nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered state %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("recovered state %v, want %v", got, want)
		}
		if sv, err := txn.GetBySecondary(si, skeyFor(k)); err != nil || string(sv) != v {
			t.Fatalf("secondary lookup %s: %q, %v (want %q)", k, sv, err, v)
		}
	}
}

// FuzzRecover feeds mutated log images to full database recovery: torn and
// corrupted logs must yield a working database or a clean error, never a
// panic or runaway allocation.
func FuzzRecover(f *testing.F) {
	name, seed := fuzzSeedSegment(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0x04
	f.Add(flip)
	huge := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(huge[4:], 0xFFFFFFF0)
	binary.LittleEndian.PutUint32(huge[24:], 0xFFFFFFF0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, seg []byte) {
		st := wal.NewMemStorage()
		fl, err := st.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(seg) > 0 {
			if _, err := fl.WriteAt(seg, 0); err != nil {
				t.Fatal(err)
			}
		}
		fl.Sync()
		fl.Close()
		db, err := Recover(sweepConfig(st.Crash()))
		if err == nil {
			db.Close()
		}
	})
}
