package core

import (
	"fmt"
	"strings"
	"testing"

	"ermia/internal/wal"
)

// TestRecoverySurvivesModuloReuse pins a data-loss regression: the log's 16
// modulo segment numbers are reused as the log grows, and rotation never
// deletes the files older generations leave behind (only truncation does).
// Recovery used to keep just the newest generation per number, so an
// untruncated log that outgrew 16 segments silently lost its oldest
// segments' transactions — including the create-table records, making every
// later record unreplayable. Every generation must be scanned.
func TestRecoverySurvivesModuloReuse(t *testing.T) {
	dir := t.TempDir()
	st, err := wal.NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := func(s wal.Storage) Config {
		return Config{WAL: wal.Config{SegmentSize: 16 << 10, BufferSize: 8 << 10, Storage: s}}
	}
	db, err := Open(cfg(st))
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	value := []byte(strings.Repeat("v", 100))
	const rows = 4000 // ~0.7MB of log: well past 16 segments of 16KiB
	for i := 0; i < rows; {
		txn := db.BeginTxn(0)
		for j := 0; j < 8 && i < rows; j, i = j+1, i+1 {
			if err := txn.Insert(tbl, []byte(fmt.Sprintf("r%06d", i)), value); err != nil {
				t.Fatal(err)
			}
		}
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	st2, err := wal.NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	pass1, err := wal.Recover(st2, nil)
	if err != nil {
		t.Fatal(err)
	}
	nums := map[int]int{}
	for _, sm := range pass1.Segments {
		nums[sm.Num]++
	}
	reused := 0
	for _, n := range nums {
		if n > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Fatalf("workload produced no modulo reuse (%d segments); the regression is not exercised",
			len(pass1.Segments))
	}

	st3, err := wal.NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Recover(cfg(st3))
	if err != nil {
		t.Fatalf("recovery over %d segments (%d reused numbers): %v", len(pass1.Segments), reused, err)
	}
	defer db2.Close()
	rtbl := db2.OpenTable("t")
	if rtbl == nil {
		t.Fatal("table lost in recovery")
	}
	txn := db2.BeginTxn(0)
	defer txn.Abort()
	count := 0
	if err := txn.Scan(rtbl, nil, nil, func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != rows {
		t.Fatalf("recovered %d rows, want %d (oldest generations dropped?)", count, rows)
	}
}
