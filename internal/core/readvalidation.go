package core

import (
	"ermia/internal/engine"
	"ermia/internal/mvcc"
)

// Isolation selects the concurrency-control scheme layered on the physical
// substrate. §3.6: "ERMIA's physical layer allows efficient implementations
// of a variety of CC schemes, including read-set validation and
// multi-version CC" — all three run on the same indirection arrays, log,
// and epoch managers.
type Isolation int

const (
	// SnapshotIsolation is plain SI (ERMIA-SI): first-updater-wins writes,
	// no read tracking, write skew possible.
	SnapshotIsolation Isolation = iota
	// SSN overlays the Serial Safety Net certifier on SI (ERMIA-SSN):
	// serializable, with balanced reader/writer treatment.
	SSN
	// ReadValidation is multi-version OCC (ERMIA-RV): SI forward
	// processing plus Silo-style commit-time read-set validation — every
	// version read must still be the latest committed version at commit.
	// Serializable, but writers win over readers, so it reproduces the
	// reader-starvation behaviour the paper attributes to lightweight OCC.
	// Included as the "read-set validation" point in the design space.
	ReadValidation
)

func (i Isolation) String() string {
	switch i {
	case SnapshotIsolation:
		return "si"
	case SSN:
		return "ssn"
	case ReadValidation:
		return "read-validation"
	default:
		return "invalid"
	}
}

// rvRead is one tracked read for ReadValidation mode.
type rvRead struct {
	arr *mvcc.OIDArray
	oid mvcc.OID
	v   *mvcc.Version
}

// rvTrack records a read for commit-time validation. Own writes are not
// tracked: the write set defends them.
func (t *Txn) rvTrack(arr *mvcc.OIDArray, oid mvcc.OID, v *mvcc.Version, cstamp uint64) {
	if t.mode != ReadValidation || cstamp == 0 {
		return
	}
	t.rvReads = append(t.rvReads, rvRead{arr: arr, oid: oid, v: v})
}

// rvCommit validates the read set: each read version must still be the
// newest committed version of its record (our own overwrite of it counts
// as current). Any interleaved committed overwrite aborts us — writers win.
//
//ermia:guarded
func (t *Txn) rvCommit() error {
	for _, h := range t.nodeSet {
		if !h.Valid() {
			t.db.stats.PhantomAborts.Add(1)
			return engine.ErrPhantom
		}
	}
	for i := range t.rvReads {
		r := &t.rvReads[i]
		head := r.arr.Head(r.oid)
		if head == r.v {
			continue
		}
		// Our own write over the version we read is fine.
		if head != nil && mvcc.IsTID(head.CLSN()) &&
			mvcc.AsTID(head.CLSN()) == t.tid && head.Next() == r.v {
			continue
		}
		t.db.stats.RVAborts.Add(1)
		return engine.ErrReadValidation
	}
	return nil
}
