// Package histcheck is a test substrate: it records the read/write
// footprints of committed transactions and checks the resulting dependency
// graph for cycles. A serializable execution must produce an acyclic graph
// over committed transactions; the property tests run random concurrent
// workloads against ERMIA-SSN and Silo-OCC and assert acyclicity, and
// against plain SI to demonstrate that write skew really occurs.
//
// Dependencies are derived from version numbers: every record carries a
// monotonically increasing logical version; a transaction records the
// version of each record it read and the version each of its writes
// created.
//
//   - WR (read dependency):  T2 read the version T1 wrote       → T1 ➝ T2
//   - WW (write dependency): T2 overwrote the version T1 wrote  → T1 ➝ T2
//   - RW (anti-dependency):  T1 read a version T2 overwrote     → T1 ➝ T2
//
// The checker is part of the reproducibility contract: given the same
// recorded history it must emit edges and cycles in the same order, so a
// failing seed prints the same counterexample every run.
//
//ermia:deterministic
package histcheck

import (
	"fmt"
	"sort"
	"sync"
)

// Op is one footprint element of a committed transaction.
type Op struct {
	Key     string
	Version uint64 // version read, or version created by a write
	Write   bool
}

// Txn is a committed transaction's footprint.
type Txn struct {
	ID  int
	Ops []Op
}

// History accumulates committed transactions. Safe for concurrent Record
// calls.
type History struct {
	mu   sync.Mutex
	txns []Txn
	next int
}

// New returns an empty history.
func New() *History { return &History{} }

// Record adds a committed transaction's footprint and returns its id.
func (h *History) Record(ops []Op) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	h.txns = append(h.txns, Txn{ID: id, Ops: append([]Op(nil), ops...)})
	return id
}

// Len returns the number of committed transactions recorded.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.txns)
}

// Edge is one dependency in the serialization graph.
type Edge struct {
	From, To int
	Kind     string // "wr", "ww", "rw"
	Key      string
}

// Graph computes the dependency edges of the recorded history.
func (h *History) Graph() []Edge {
	h.mu.Lock()
	txns := append([]Txn(nil), h.txns...)
	h.mu.Unlock()

	// Per key: writers by created version, readers by read version.
	type access struct {
		txn     int
		version uint64
	}
	writers := map[string][]access{}
	readers := map[string][]access{}
	for _, t := range txns {
		for _, op := range t.Ops {
			if op.Write {
				writers[op.Key] = append(writers[op.Key], access{t.ID, op.Version})
			} else {
				readers[op.Key] = append(readers[op.Key], access{t.ID, op.Version})
			}
		}
	}

	// Iterate keys in sorted order: map order would randomize edge order
	// (and therefore which cycle FindCycle reports) between runs.
	keys := make([]string, 0, len(writers))
	//ermia:allow nodeterminism collecting keys to sort; order does not escape
	for key := range writers {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	var edges []Edge
	for _, key := range keys {
		ws := writers[key]
		sort.Slice(ws, func(i, j int) bool { return ws[i].version < ws[j].version })
		// WW edges: consecutive writers of the same key.
		for i := 1; i < len(ws); i++ {
			if ws[i-1].txn != ws[i].txn {
				edges = append(edges, Edge{ws[i-1].txn, ws[i].txn, "ww", key})
			}
		}
		// WR and RW edges.
		for _, r := range readers[key] {
			// The writer that created the version r read.
			idx := sort.Search(len(ws), func(i int) bool { return ws[i].version >= r.version })
			if idx < len(ws) && ws[idx].version == r.version && ws[idx].txn != r.txn {
				edges = append(edges, Edge{ws[idx].txn, r.txn, "wr", key})
			}
			// The writer that overwrote it (first version greater).
			j := sort.Search(len(ws), func(i int) bool { return ws[i].version > r.version })
			if j < len(ws) && ws[j].txn != r.txn {
				edges = append(edges, Edge{r.txn, ws[j].txn, "rw", key})
			}
		}
	}
	return edges
}

// FindCycle returns a dependency cycle among committed transactions, or nil
// if the graph is acyclic (the execution is serializable).
func (h *History) FindCycle() []Edge {
	edges := h.Graph()
	adj := map[int][]Edge{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var stack []Edge
	var cycle []Edge

	var dfs func(n int) bool
	dfs = func(n int) bool {
		color[n] = gray
		for _, e := range adj[n] {
			switch color[e.To] {
			case gray:
				// Found a back edge: extract the cycle from the stack.
				cycle = append(cycle, e)
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i].From == e.To {
						break
					}
				}
				return true
			case white:
				stack = append(stack, e)
				if dfs(e.To) {
					return true
				}
				stack = stack[:len(stack)-1]
			}
		}
		color[n] = black
		return false
	}
	// Root the DFS at ascending node ids so the reported cycle is the same
	// every run regardless of map order.
	nodes := make([]int, 0, len(adj))
	//ermia:allow nodeterminism collecting keys to sort; order does not escape
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		if color[n] == white {
			if dfs(n) {
				return cycle
			}
		}
	}
	return nil
}

// Describe renders a cycle for test failure messages.
func Describe(cycle []Edge) string {
	if len(cycle) == 0 {
		return "acyclic"
	}
	s := ""
	for _, e := range cycle {
		s += fmt.Sprintf("T%d -%s(%s)-> T%d; ", e.From, e.Kind, e.Key, e.To)
	}
	return s
}
