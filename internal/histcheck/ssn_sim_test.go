package histcheck

import (
	"fmt"
	"testing"

	"ermia/internal/xrand"
)

// Property test for the SSN certification rule itself (paper §4): run a
// randomly interleaved workload through a miniature snapshot-isolation
// engine, certify each commit with SSN's exclusion-window test
// (π(T) ≤ η(T) → abort), and require the recorded history to be acyclic for
// every seed. A control run with certification disabled must produce cycles
// — otherwise the workload is too tame and the serializability assertion is
// vacuous.
//
// The simulator is deliberately tiny and single-goroutine: "concurrency" is
// an explicit interleaving driven by the seed, so any failure replays from
// the seed alone. Its purpose is to check the SSN *rule* against the
// dependency-graph ground truth, independent of the real engine's
// synchronization. (TestSSNPreventsWriteSkew in internal/core covers the
// real engine; this covers the math.)

// noSuccessor marks a version not yet overwritten by a committed txn.
const noSuccessor = ^uint64(0)

// simVersion is one committed version of a key, carrying the SSN stamps.
type simVersion struct {
	cstamp uint64 // commit stamp of the creator
	pstamp uint64 // latest commit stamp among committed readers
	sstamp uint64 // π of the committed overwriter, noSuccessor if latest
}

type simTxn struct {
	begin  uint64
	reads  map[string]*simVersion
	writes map[string]bool
	ops    int // ops left before this txn tries to commit
}

type simulator struct {
	clock   uint64
	keys    []string
	store   map[string][]*simVersion
	ssn     bool
	hist    *History
	commits int
	aborts  int // SSN exclusion-window aborts only
}

// read performs a snapshot read: the newest version committed at or before
// the transaction's begin stamp. Reads of the transaction's own buffered
// write don't touch the store and leave no footprint.
func (s *simulator) read(t *simTxn, key string) {
	if t.writes[key] {
		return
	}
	if _, ok := t.reads[key]; ok {
		return // repeated read hits the same snapshot version
	}
	vs := s.store[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].cstamp <= t.begin {
			t.reads[key] = vs[i]
			return
		}
	}
}

// commit applies SI first-committer-wins, then (if enabled) SSN
// certification, then installs the writes and records the footprint.
func (s *simulator) commit(t *simTxn) {
	// SI write-write conflict: a concurrent transaction already committed a
	// newer version of something we want to write.
	for k := range t.writes {
		vs := s.store[k]
		if vs[len(vs)-1].cstamp > t.begin {
			return
		}
	}
	s.clock++
	c := s.clock

	if s.ssn {
		// π(T): bounded above by c(T) and by the sstamp of every read
		// version that a committed transaction has since overwritten (our
		// rw successors). η(T): the latest commit among our predecessors —
		// creators of versions we read, and committed readers of versions
		// we overwrite (their rw edges point at us).
		pi := c
		var eta uint64
		for _, v := range t.reads {
			if v.cstamp > eta {
				eta = v.cstamp
			}
			if v.sstamp != noSuccessor && v.sstamp < pi {
				pi = v.sstamp
			}
		}
		for k := range t.writes {
			vs := s.store[k]
			if p := vs[len(vs)-1].pstamp; p > eta {
				eta = p
			}
		}
		if pi <= eta {
			s.aborts++
			return
		}
		// Post-commit stamp maintenance.
		for _, v := range t.reads {
			if c > v.pstamp {
				v.pstamp = c
			}
		}
		for k := range t.writes {
			vs := s.store[k]
			if prev := vs[len(vs)-1]; pi < prev.sstamp {
				prev.sstamp = pi
			}
		}
	}

	ops := make([]Op, 0, len(t.reads)+len(t.writes))
	for k, v := range t.reads {
		ops = append(ops, Op{Key: k, Version: v.cstamp})
	}
	for k := range t.writes {
		s.store[k] = append(s.store[k], &simVersion{cstamp: c, pstamp: c, sstamp: noSuccessor})
		ops = append(ops, Op{Key: k, Version: c, Write: true})
	}
	s.hist.Record(ops)
	s.commits++
}

// runSim interleaves up to 4 concurrent transactions over a small key space
// (small on purpose: conflicts are the interesting part).
func runSim(seed uint64, ssn bool) *simulator {
	rng := xrand.New2(seed, 0x55A1)
	s := &simulator{store: map[string][]*simVersion{}, ssn: ssn, hist: New()}
	nKeys := 3 + rng.Intn(4)
	for i := 0; i < nKeys; i++ {
		k := fmt.Sprintf("k%d", i)
		s.keys = append(s.keys, k)
		s.store[k] = []*simVersion{{sstamp: noSuccessor}}
	}

	const totalTxns = 400
	var active []*simTxn
	started := 0
	for started < totalTxns || len(active) > 0 {
		canStart := started < totalTxns && len(active) < 4
		if canStart && (len(active) == 0 || rng.Intn(3) == 0) {
			s.clock++
			active = append(active, &simTxn{
				begin:  s.clock,
				reads:  map[string]*simVersion{},
				writes: map[string]bool{},
				ops:    2 + rng.Intn(4),
			})
			started++
			continue
		}
		i := rng.Intn(len(active))
		t := active[i]
		if t.ops == 0 {
			s.commit(t)
			active = append(active[:i], active[i+1:]...)
			continue
		}
		t.ops--
		key := s.keys[rng.Intn(len(s.keys))]
		s.read(t, key) // read-modify-write shape: every write reads first
		if rng.Intn(3) == 0 {
			t.writes[key] = true
		}
	}
	return s
}

const simSeeds = 16

// TestSSNCertifiedHistoriesAcyclic: with the exclusion-window test enabled,
// no seed may produce a dependency cycle among committed transactions.
func TestSSNCertifiedHistoriesAcyclic(t *testing.T) {
	totalAborts := 0
	for seed := uint64(0); seed < simSeeds; seed++ {
		s := runSim(seed, true)
		if c := s.hist.FindCycle(); c != nil {
			t.Fatalf("seed %d: SSN-certified history has a cycle: %s", seed, Describe(c))
		}
		if s.commits == 0 {
			t.Fatalf("seed %d: no transaction committed", seed)
		}
		totalAborts += s.aborts
	}
	if totalAborts == 0 {
		t.Fatal("SSN never aborted anything across all seeds; workload generates no dangerous structures")
	}
}

// TestPlainSIProducesCycles is the control: the same workloads without SSN
// certification must exhibit non-serializable executions (write skew), or
// the acyclicity test above proves nothing.
func TestPlainSIProducesCycles(t *testing.T) {
	cycles := 0
	for seed := uint64(0); seed < simSeeds; seed++ {
		s := runSim(seed, false)
		if c := s.hist.FindCycle(); c != nil {
			cycles++
			if cycles == 1 {
				t.Logf("seed %d: SI anomaly: %s", seed, Describe(c))
			}
		}
	}
	if cycles == 0 {
		t.Fatal("plain SI never produced a cycle; the SSN property test is vacuous")
	}
	t.Logf("%d/%d seeds produced SI anomalies", cycles, simSeeds)
}
