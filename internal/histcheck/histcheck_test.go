package histcheck

import "testing"

func TestAcyclicHistory(t *testing.T) {
	h := New()
	// T0 writes x@1; T1 reads x@1 and writes y@1: T0 -> T1 only.
	h.Record([]Op{{Key: "x", Version: 1, Write: true}})
	h.Record([]Op{{Key: "x", Version: 1}, {Key: "y", Version: 1, Write: true}})
	if c := h.FindCycle(); c != nil {
		t.Fatalf("false cycle: %s", Describe(c))
	}
}

func TestWriteSkewCycleDetected(t *testing.T) {
	h := New()
	// Initial writes by T0: x@1, y@1.
	h.Record([]Op{{Key: "x", Version: 1, Write: true}, {Key: "y", Version: 1, Write: true}})
	// T1 reads x@1, y@1, writes x@2. T2 reads x@1, y@1, writes y@2.
	// T1 -rw(y)-> T2 (read y@1 overwritten by y@2), T2 -rw(x)-> T1.
	h.Record([]Op{{Key: "x", Version: 1}, {Key: "y", Version: 1}, {Key: "x", Version: 2, Write: true}})
	h.Record([]Op{{Key: "x", Version: 1}, {Key: "y", Version: 1}, {Key: "y", Version: 2, Write: true}})
	c := h.FindCycle()
	if c == nil {
		t.Fatal("write-skew cycle not detected")
	}
	t.Logf("cycle: %s", Describe(c))
}

func TestWWChainAcyclic(t *testing.T) {
	h := New()
	for v := uint64(1); v <= 10; v++ {
		h.Record([]Op{{Key: "x", Version: v, Write: true}})
	}
	if c := h.FindCycle(); c != nil {
		t.Fatalf("ww chain cyclic: %s", Describe(c))
	}
}

func TestLostUpdateCycle(t *testing.T) {
	h := New()
	h.Record([]Op{{Key: "x", Version: 1, Write: true}})
	// Both read x@1; T1 writes x@2, T2 writes x@3 (a lost update at the
	// logical level: T2 didn't read T1's write).
	h.Record([]Op{{Key: "x", Version: 1}, {Key: "x", Version: 2, Write: true}})
	h.Record([]Op{{Key: "x", Version: 1}, {Key: "x", Version: 3, Write: true}})
	// T1 -ww-> T2, and T2 -rw-> T1 (T2 read x@1, overwritten by T1's x@2).
	if c := h.FindCycle(); c == nil {
		t.Fatal("lost-update cycle not detected")
	}
}

func TestReadOwnWriteNoSelfEdge(t *testing.T) {
	h := New()
	h.Record([]Op{{Key: "x", Version: 1, Write: true}, {Key: "x", Version: 1}})
	if c := h.FindCycle(); c != nil {
		t.Fatalf("self edge produced a cycle: %s", Describe(c))
	}
}

func TestGraphEdges(t *testing.T) {
	h := New()
	h.Record([]Op{{Key: "a", Version: 1, Write: true}})
	h.Record([]Op{{Key: "a", Version: 1}})
	h.Record([]Op{{Key: "a", Version: 2, Write: true}})
	kinds := map[string]int{}
	for _, e := range h.Graph() {
		kinds[e.Kind]++
	}
	if kinds["wr"] != 1 || kinds["ww"] != 1 || kinds["rw"] != 1 {
		t.Fatalf("edge kinds = %v, want one of each", kinds)
	}
}
