// Package client is the network counterpart of the ermia public API: a
// connection-pooled, pipelined client for internal/server that implements
// engine.DB, so application code — including engine.RunWithRetry — runs
// unchanged against a remote database. Wire statuses are mapped back onto
// the engine error taxonomy: a write-write conflict on the server is
// errors.Is(err, engine.ErrWriteConflict) on the client, a dead connection
// is the retryable engine.ErrConnLost, and a draining server is the
// non-retryable engine.ErrShutdown.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ermia/internal/engine"
	"ermia/internal/proto"
)

// errClientClosed reports use of a closed client. Deliberately NOT
// engine.ErrConnLost: retrying against a closed client cannot succeed.
var errClientClosed = errors.New("client: closed")

// Options configures a client.
type Options struct {
	// Addr is the server's TCP address. Required.
	Addr string
	// FallbackAddrs are alternative server addresses tried in order when a
	// redial of the current address fails — typically the replicas of Addr.
	// After a primary failure an operator promotes a replica and clients
	// fail over by rotating onto it; transactions in flight during the
	// switch surface the retryable engine.ErrConnLost, so RunWithRetry
	// loops converge on the new primary without application changes.
	FallbackAddrs []string
	// PoolSize is the number of connections; Begin pins transaction w to
	// connection w%PoolSize, so concurrent workers spread across the pool
	// while each transaction stays on the session that owns it. Default 1.
	PoolSize int
	// DialTimeout bounds each dial. Default 5s.
	DialTimeout time.Duration
	// Dial, when set, replaces net.DialTimeout — the seam through which the
	// fault-injecting transport (internal/faultconn) is threaded in tests
	// and the nemesis harness. Nil uses TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// RequestTimeout, when positive, bounds every request: the budget rides
	// the frame header so the server aborts overdue work server-side, and
	// the client gives up waiting at twice the budget (covering the reply's
	// flight) — failing the connection, since a pipeline with a hole in it
	// cannot be trusted. Expiry surfaces as the retryable
	// engine.ErrDeadlineExceeded; for a commit the outcome is indeterminate,
	// exactly like engine.ErrConnLost. Zero means no deadline.
	RequestTimeout time.Duration
	// KeepaliveInterval, when positive, sends a Ping on each pool connection
	// this often. Keepalives hold idle connections inside the server's
	// IdleTimeout, refresh the client's view of the primary epoch, and tear
	// down connections to a deposed (stale-epoch) server so the next use
	// fails over. Zero disables.
	KeepaliveInterval time.Duration
}

// Client is a remote engine.DB. All methods are safe for concurrent use.
// Connections are dialed lazily and redialed transparently after failures,
// so a client survives a server restart: in-flight work fails with the
// retryable engine.ErrConnLost and the next attempt reconnects.
type Client struct {
	opts Options

	mu     sync.Mutex
	conns  []*conn
	closed bool
	// addrIdx rotates through Addr + FallbackAddrs: 0 is Addr, i>0 is
	// FallbackAddrs[i-1]. All pool connections follow the same index so the
	// client talks to one server at a time.
	addrIdx int

	// epochMax is the highest primary epoch any response has carried. A
	// server reporting (or refusing with) a lower epoch is a deposed primary
	// that healed back into view; the client drops it and rotates.
	epochMax atomic.Uint64

	tmu    sync.Mutex
	tables map[string]*clientTable // handle identity: same name, same handle

	// counters are the pool-level health counters surfaced by Stats. They
	// attribute wire-layer overhead (redials, retries, failovers) separately
	// from the server's own counters, which is what lets a shard-bench run
	// tell "the workload is slow" apart from "the pool is churning".
	counters poolCounters
}

// poolCounters backs PoolStats; shared by the client and its connections.
type poolCounters struct {
	requests   atomic.Uint64
	retries    atomic.Uint64
	connLosses atomic.Uint64
	rotations  atomic.Uint64
}

// PoolStats is a snapshot of the client pool's own counters (as opposed to
// ServerStats, which fetches the remote server's).
type PoolStats struct {
	// Requests counts request frames issued on pool connections, including
	// pings and retried attempts.
	Requests uint64
	// Retries counts client-internal transparent retries: stale table
	// handles re-created after a server restart.
	Retries uint64
	// ConnLosses counts pool connections that died (transport error,
	// request timeout) — client Close excluded.
	ConnLosses uint64
	// Rotations counts address-rotation advances: explicit failovers off a
	// distrusted server plus dial-time skips of an unreachable or deposed
	// address.
	Rotations uint64
}

// Stats returns the pool-level counter snapshot. It is purely local — no
// network round trip; use ServerStats for the remote server's counters.
func (c *Client) Stats() PoolStats {
	return PoolStats{
		Requests:   c.counters.requests.Load(),
		Retries:    c.counters.retries.Load(),
		ConnLosses: c.counters.connLosses.Load(),
		Rotations:  c.counters.rotations.Load(),
	}
}

// Dial connects to a server. The first connection is dialed eagerly so a
// bad address fails here rather than on first use.
func Dial(opts Options) (*Client, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 1
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	c := &Client{
		opts:   opts,
		conns:  make([]*conn, opts.PoolSize),
		tables: make(map[string]*clientTable),
	}
	if _, err := c.conn(0); err != nil {
		return nil, err
	}
	return c, nil
}

// conn returns pool connection i%PoolSize, dialing or redialing as needed.
func (c *Client) conn(i int) (*conn, error) {
	if i < 0 {
		i = -i
	}
	idx := i % c.opts.PoolSize
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if cn := c.conns[idx]; cn != nil && !cn.isBroken() {
		return cn, nil
	}
	// Try the current address first, then rotate through the fallbacks.
	// One full rotation per conn() call: a dead fleet still fails fast.
	addrs := 1 + len(c.opts.FallbackAddrs)
	var firstErr error
	for attempt := 0; attempt < addrs; attempt++ {
		cn, err := dialConn(c.addr(), c.opts, &c.counters)
		if err == nil {
			// Ping handshake: learn the server's epoch before trusting it.
			// A deposed primary that healed back into view reports an epoch
			// below our high-water mark and is skipped like a failed dial.
			if ep, _, perr := cn.ping(); perr != nil {
				cn.close()
				err = perr
			} else if ep < c.epochMax.Load() {
				cn.close()
				err = fmt.Errorf("%w: server epoch %d < observed %d at %s",
					engine.ErrStaleEpoch, ep, c.epochMax.Load(), c.addr())
			} else {
				c.noteEpoch(ep)
				c.conns[idx] = cn
				if c.opts.KeepaliveInterval > 0 {
					go c.keepalive(cn)
				}
				return cn, nil
			}
		}
		if firstErr == nil {
			firstErr = err
		}
		c.addrIdx = (c.addrIdx + 1) % addrs
		c.counters.rotations.Add(1)
	}
	if errors.Is(firstErr, engine.ErrStaleEpoch) {
		return nil, firstErr
	}
	return nil, connLost(firstErr)
}

// noteEpoch raises the client's primary-epoch high-water mark.
func (c *Client) noteEpoch(e uint64) {
	for {
		cur := c.epochMax.Load()
		if e <= cur || c.epochMax.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Epoch returns the highest primary epoch the client has observed.
func (c *Client) Epoch() uint64 { return c.epochMax.Load() }

// rotate drops a connection to a server the client no longer trusts (lost,
// deposed, …) and advances the address rotation so the next dial tries the
// next server.
func (c *Client) rotate(cn *conn, cause error) {
	cn.fail(cause)
	c.mu.Lock()
	c.addrIdx = (c.addrIdx + 1) % (1 + len(c.opts.FallbackAddrs))
	c.mu.Unlock()
	c.counters.rotations.Add(1)
}

// keepalive pings cn every KeepaliveInterval until it breaks, refreshing the
// epoch high-water mark and dropping the connection if the server turns out
// to be a deposed primary.
func (c *Client) keepalive(cn *conn) {
	t := time.NewTicker(c.opts.KeepaliveInterval)
	defer t.Stop()
	for range t.C {
		if cn.isBroken() {
			return
		}
		ep, _, err := cn.ping()
		if err != nil {
			return
		}
		if ep < c.epochMax.Load() {
			c.rotate(cn, fmt.Errorf("%w: keepalive saw epoch %d < observed %d",
				engine.ErrStaleEpoch, ep, c.epochMax.Load()))
			return
		}
		c.noteEpoch(ep)
	}
}

// Ping round-trips a liveness probe on pool connection 0, returning the
// server's primary epoch and engine health.
func (c *Client) Ping() (epoch uint64, health engine.HealthState, err error) {
	cn, err := c.conn(0)
	if err != nil {
		return 0, 0, err
	}
	epoch, health, err = cn.ping()
	if err == nil {
		c.noteEpoch(epoch)
	}
	return epoch, health, err
}

// addr returns the address the pool currently points at. Caller holds c.mu.
func (c *Client) addr() string {
	if c.addrIdx == 0 {
		return c.opts.Addr
	}
	return c.opts.FallbackAddrs[c.addrIdx-1]
}

// Close closes every pool connection. Open remote transactions are aborted
// by server-side session teardown.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, cn := range c.conns {
		if cn != nil {
			cn.close()
		}
	}
	return nil
}

// clientTable is a remote table handle. Ops carry the table name on the
// wire, so handles stay valid across reconnects and server restarts.
type clientTable struct {
	c       *Client
	name    string
	ensured bool // CreateTable acknowledged by the server
	mu      sync.Mutex
}

// Name implements engine.Table.
func (t *clientTable) Name() string { return t.name }

// ensure retries the remote CreateTable if the original attempt was lost to
// a connection failure.
func (t *clientTable) ensure(cn *conn) error {
	t.mu.Lock()
	done := t.ensured
	t.mu.Unlock()
	if done {
		return nil
	}
	st, detail, _, err := cn.call(proto.MsgCreateTable, proto.AppendBytes(nil, []byte(t.name)))
	if err != nil {
		return err
	}
	if err := st.Err(detail); err != nil {
		return err
	}
	t.mu.Lock()
	t.ensured = true
	t.mu.Unlock()
	return nil
}

// recreate forces a fresh remote CreateTable; used when the server reports
// the table unknown (its creation was lost to a restart).
func (t *clientTable) recreate(cn *conn) error {
	t.mu.Lock()
	t.ensured = false
	t.mu.Unlock()
	return t.ensure(cn)
}

// handle returns the cached table handle for name, creating it if absent.
// Caching keeps handle identity: CreateTable and OpenTable of the same name
// return the same engine.Table, matching in-process engines.
func (c *Client) handle(name string) *clientTable {
	c.tmu.Lock()
	defer c.tmu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		t = &clientTable{c: c, name: name}
		c.tables[name] = t
	}
	return t
}

// CreateTable makes (or opens) the named table on the server. Network
// failures are absorbed: the returned handle re-attempts creation on first
// use, so retry loops converge once the server is reachable.
func (c *Client) CreateTable(name string) engine.Table {
	t := c.handle(name)
	if cn, err := c.conn(0); err == nil {
		t.ensure(cn)
	}
	return t
}

// OpenTable returns a handle to an existing table, or nil if the server
// does not have it (or cannot be reached).
func (c *Client) OpenTable(name string) engine.Table {
	cn, err := c.conn(0)
	if err != nil {
		return nil
	}
	st, detail, _, err := cn.call(proto.MsgOpenTable, proto.AppendBytes(nil, []byte(name)))
	if err != nil || st.Err(detail) != nil {
		return nil
	}
	t := c.handle(name)
	t.mu.Lock()
	t.ensured = true
	t.mu.Unlock()
	return t
}

// Begin starts a read-write transaction pinned to pool connection
// worker%PoolSize. Failures surface on the returned transaction's
// operations (engine.DB.Begin has no error return), as the retryable
// engine.ErrConnLost.
func (c *Client) Begin(worker int) engine.Txn { return c.begin(worker, 0) }

// BeginReadOnly starts a read-only transaction.
func (c *Client) BeginReadOnly(worker int) engine.Txn {
	return c.begin(worker, proto.BeginReadOnly)
}

func (c *Client) begin(worker int, flags byte) engine.Txn {
	cn, err := c.conn(worker)
	if err != nil {
		return &clientTxn{err: err}
	}
	// Begin carries the client's observed epoch: a deposed primary (lower
	// epoch) must refuse rather than accept writes it can never replicate.
	p := proto.AppendU8(nil, flags)
	p = proto.AppendU64(p, c.epochMax.Load())
	st, detail, d, err := cn.call(proto.MsgBegin, p)
	if err != nil {
		return &clientTxn{err: err}
	}
	if err := st.Err(detail); err != nil {
		if errors.Is(err, engine.ErrStaleEpoch) {
			c.rotate(cn, err)
		}
		return &clientTxn{err: err}
	}
	id := d.U64()
	if d.Err() != nil {
		return &clientTxn{err: connLost(d.Err())}
	}
	return &clientTxn{c: c, cn: cn, id: id}
}

// Health fetches the server's engine health snapshot. Cause is the causing
// fault's text ("" when healthy).
func (c *Client) Health() (state engine.HealthState, cause string, err error) {
	cn, err := c.conn(0)
	if err != nil {
		return 0, "", err
	}
	st, detail, d, err := cn.call(proto.MsgHealth, nil)
	if err != nil {
		return 0, "", err
	}
	if err := st.Err(detail); err != nil {
		return 0, "", err
	}
	state = engine.HealthState(d.U8())
	cause = string(d.Bytes())
	return state, cause, d.Err()
}

// ServerStats is the server-level counter snapshot (see server.StatsSnapshot).
type ServerStats struct {
	Conns         uint32
	OpenTxns      uint32
	Commits       uint64
	Aborts        uint64
	GroupBatches  uint64
	GroupCommits  uint64
	DurableOffset uint64

	ReplSubscribers   uint32
	ReplBatches       uint64
	ReplShippedOffset uint64
	ReplAckedOffset   uint64

	Checkpoints uint64

	ActiveQueries    uint32
	Queries          uint64
	QueryRows        uint64
	QueriesCancelled uint64

	PreparedTxns  uint32
	ShardPrepares uint64
	ShardDecides  uint64
}

// ServerStats fetches the remote server's counters.
func (c *Client) ServerStats() (ServerStats, error) {
	var out ServerStats
	cn, err := c.conn(0)
	if err != nil {
		return out, err
	}
	st, detail, d, err := cn.call(proto.MsgStats, nil)
	if err != nil {
		return out, err
	}
	if err := st.Err(detail); err != nil {
		return out, err
	}
	out.Conns = d.U32()
	out.OpenTxns = d.U32()
	out.Commits = d.U64()
	out.Aborts = d.U64()
	out.GroupBatches = d.U64()
	out.GroupCommits = d.U64()
	out.DurableOffset = d.U64()
	out.ReplSubscribers = d.U32()
	out.ReplBatches = d.U64()
	out.ReplShippedOffset = d.U64()
	out.ReplAckedOffset = d.U64()
	out.Checkpoints = d.U64()
	out.ActiveQueries = d.U32()
	out.Queries = d.U64()
	out.QueryRows = d.U64()
	out.QueriesCancelled = d.U64()
	out.PreparedTxns = d.U32()
	out.ShardPrepares = d.U64()
	out.ShardDecides = d.U64()
	return out, d.Err()
}

// Reattach asks the server to heal a degraded engine (admin operation); it
// returns the server's reattach report text.
func (c *Client) Reattach() (string, error) {
	cn, err := c.conn(0)
	if err != nil {
		return "", err
	}
	st, detail, d, err := cn.call(proto.MsgReattach, nil)
	if err != nil {
		return "", err
	}
	if err := st.Err(detail); err != nil {
		return "", err
	}
	report := string(d.Bytes())
	return report, d.Err()
}

// Promote asks the server to promote its replica engine to primary (admin
// operation); it returns the server's promotion report text.
func (c *Client) Promote() (string, error) {
	cn, err := c.conn(0)
	if err != nil {
		return "", err
	}
	st, detail, d, err := cn.call(proto.MsgPromote, nil)
	if err != nil {
		return "", err
	}
	if err := st.Err(detail); err != nil {
		return "", err
	}
	report := string(d.Bytes())
	return report, d.Err()
}

// Checkpoint asks the server to publish a consistent checkpoint now (admin
// operation). With truncate set the server also frees sealed log segments
// below the checkpoint. It returns the checkpoint-begin offset and how many
// segments truncation removed.
func (c *Client) Checkpoint(truncate bool) (begin uint64, freed uint32, err error) {
	cn, err := c.conn(0)
	if err != nil {
		return 0, 0, err
	}
	var flags byte
	if truncate {
		flags |= proto.CkptTruncate
	}
	st, detail, d, err := cn.call(proto.MsgCheckpoint, proto.AppendU8(nil, flags))
	if err != nil {
		return 0, 0, err
	}
	if err := st.Err(detail); err != nil {
		return 0, 0, err
	}
	begin = d.U64()
	freed = d.U32()
	return begin, freed, d.Err()
}

// FetchCheckpoint downloads the server's newest checkpoint image chunk by
// chunk, returning the raw image bytes (verifiable exactly as recovery
// verifies the on-disk blob) plus its metadata. If the server publishes a
// newer checkpoint mid-transfer the fetch restarts against it. A server
// with no checkpoint yet returns engine.ErrNoCheckpoint.
func (c *Client) FetchCheckpoint() (engine.CheckpointChunk, []byte, error) {
	cn, err := c.conn(0)
	if err != nil {
		return engine.CheckpointChunk{}, nil, err
	}
	var meta engine.CheckpointChunk
	var image []byte
restart:
	for {
		ck, err := fetchChunk(cn, uint64(len(image)))
		if err != nil {
			return engine.CheckpointChunk{}, nil, err
		}
		if meta.Name != "" && ck.Name != meta.Name {
			// A newer checkpoint replaced the one being fetched; start over.
			meta = engine.CheckpointChunk{}
			image = image[:0]
			continue restart
		}
		meta = ck
		image = append(image, ck.Data...)
		if uint64(len(image)) >= ck.Total {
			meta.Data = nil
			return meta, image, nil
		}
		if len(ck.Data) == 0 {
			return engine.CheckpointChunk{}, nil, fmt.Errorf("client: checkpoint fetch stalled at %d/%d bytes", len(image), ck.Total)
		}
	}
}

// fetchChunk issues one CkptFetch frame.
func fetchChunk(cn *conn, off uint64) (engine.CheckpointChunk, error) {
	st, detail, d, err := cn.call(proto.MsgCkptFetch, proto.AppendU64(nil, off))
	if err != nil {
		return engine.CheckpointChunk{}, err
	}
	if err := st.Err(detail); err != nil {
		return engine.CheckpointChunk{}, err
	}
	ck := engine.CheckpointChunk{Name: string(d.Bytes())}
	ck.Gen = d.U64()
	ck.Begin = d.U64()
	ck.Start = d.U64()
	ck.Total = d.U64()
	ck.Data = d.Bytes()
	return ck, d.Err()
}

var _ engine.DB = (*Client)(nil)
