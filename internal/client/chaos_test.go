package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ermia/internal/client"
	"ermia/internal/core"
	"ermia/internal/engine"
	"ermia/internal/faultconn"
	"ermia/internal/server"
	"ermia/internal/xrand"
)

// chaosServe starts a server on the fault network under the given name and
// returns a dialer-equipped client options template.
func chaosServe(t *testing.T, n *faultconn.Network, name string, cfg server.Config) *server.Server {
	t.Helper()
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cfg.DB = db
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := n.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv
}

func faultDialer(n *faultconn.Network, from string) func(string, time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		return n.DialTimeout(from, addr, timeout)
	}
}

// TestMidFrameCutSurfacesConnLost: a connection severed in the middle of a
// request frame fails the in-flight operation with the retryable
// engine.ErrConnLost, and the client transparently redials for the next
// transaction.
func TestMidFrameCutSurfacesConnLost(t *testing.T) {
	n := faultconn.NewNetwork(1)
	chaosServe(t, n, "server", server.Config{})
	c, err := client.Dial(client.Options{
		Addr: "server",
		Dial: faultDialer(n, "client"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tbl := c.CreateTable("t")
	txn := c.Begin(0)
	if err := txn.Insert(tbl, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Sever the outbound direction 3 bytes into the next frame: the commit
	// request tears mid-header. Outcome indeterminate -> ErrConnLost.
	n.CutAfter("client", "server", 3)
	err = txn.Commit()
	if !errors.Is(err, engine.ErrConnLost) {
		t.Fatalf("mid-frame cut commit = %v, want ErrConnLost", err)
	}
	if !engine.IsRetryable(err) {
		t.Fatalf("ErrConnLost must be retryable, got %v", err)
	}

	// The next transaction redials and works.
	n.HealAll()
	txn = c.Begin(0)
	if err := txn.Insert(tbl, []byte("k2"), []byte("v")); err != nil {
		t.Fatalf("post-cut redial insert: %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("post-cut redial commit: %v", err)
	}
}

// TestRunWithRetryLosesNoAckedCommitUnderCuts: concurrent workers insert
// unique keys through engine.RunWithRetry while a chaos goroutine keeps
// severing connections mid-stream. Every insert whose retry loop returned
// nil (acked) must be present afterwards — connection loss may cost
// duplicates' retries, never acked data — and the cuts must actually have
// forced retries for the test to prove anything.
func TestRunWithRetryLosesNoAckedCommitUnderCuts(t *testing.T) {
	n := faultconn.NewNetwork(42)
	chaosServe(t, n, "server", server.Config{})
	c, err := client.Dial(client.Options{
		Addr:     "server",
		PoolSize: 2,
		Dial:     faultDialer(n, "client"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl := c.CreateTable("t")
	// A little wire latency stretches each exchange so cuts land mid-flight
	// often instead of between requests.
	n.SetLatency("client", "server", 200*time.Microsecond, 200*time.Microsecond)
	n.SetLatency("server", "client", 200*time.Microsecond, 200*time.Microsecond)

	stopChaos := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		rng := xrand.New(7)
		for i := 0; ; i++ {
			select {
			case <-stopChaos:
				return
			case <-time.After(time.Duration(4000+rng.Intn(8000)) * time.Microsecond):
			}
			// Alternate directions; sever a few bytes into a future frame.
			if i%2 == 0 {
				n.CutAfter("client", "server", int64(1+rng.Intn(64)))
			} else {
				n.CutAfter("server", "client", int64(1+rng.Intn(64)))
			}
		}
	}()

	const workers, per = 4, 30
	var attempts, acked [workers]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			policy := engine.RetryPolicy{BaseDelay: 500 * time.Microsecond, MaxDelay: 5 * time.Millisecond, Jitter: 0.5, Seed: uint64(id + 1)}
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("w%d-%04d", id, i))
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				err := policy.Run(ctx, c, id, func(txn engine.Txn) error {
					attempts[id]++
					// Blind write: overwriting our own earlier indeterminate
					// attempt is idempotent.
					if _, gerr := txn.Get(tbl, key); gerr == nil {
						return txn.Update(tbl, key, []byte("v"))
					}
					return txn.Insert(tbl, key, []byte("v"))
				})
				cancel()
				if err != nil {
					t.Errorf("worker %d key %s: %v", id, key, err)
					return
				}
				acked[id]++
			}
		}(w)
	}
	wg.Wait()
	close(stopChaos)
	chaos.Wait()
	n.HealAll()

	totalAttempts, totalAcked := 0, 0
	for w := 0; w < workers; w++ {
		totalAttempts += attempts[w]
		totalAcked += acked[w]
	}
	if totalAttempts <= totalAcked {
		t.Fatalf("no retries happened (%d attempts for %d acked); chaos proved nothing", totalAttempts, totalAcked)
	}
	t.Logf("chaos: %d acked commits over %d attempts", totalAcked, totalAttempts)

	// Every acked key is present.
	ro := c.BeginReadOnly(0)
	defer ro.Abort()
	for w := 0; w < workers; w++ {
		for i := 0; i < acked[w]; i++ {
			key := []byte(fmt.Sprintf("w%d-%04d", w, i))
			if _, err := ro.Get(tbl, key); err != nil {
				t.Fatalf("acked commit %s lost under connection cuts: %v", key, err)
			}
		}
	}
}
