package client

import (
	"fmt"

	"ermia/internal/engine"
	"ermia/internal/proto"
)

// PrepareOp is one logical write in a cross-shard transaction's per-shard
// write set, shipped with MsgShardPrepare so the participant can persist it
// in a durable prepare record and re-establish its locks after a crash. Op
// is the wire op code of the original mutation (proto.MsgInsert,
// proto.MsgUpdate, proto.MsgDelete); Value is empty for deletes.
type PrepareOp struct {
	Op    byte
	Table string
	Key   []byte
	Value []byte
}

// ShardPrepare runs phase one of two-phase commit against the open
// transaction txn, which must have been started by this client: the server
// makes the transaction's write set durable in a prepare record (through
// the same group committer that acks commits), parks the transaction with
// its locks held, and acks. After a nil return the transaction belongs to
// the 2PC machinery — its outcome is decided exclusively by ShardDecide,
// and the handle must not be used again. On any error the transaction is
// still the caller's to abort (unless the error itself is sticky transport
// failure, in which case server-side teardown cleans up).
//
// The request rides the transaction's own pinned connection because server
// transaction ids are session-scoped. It carries the client's observed
// primary epoch: a deposed shard primary is fenced exactly as at Begin and
// can never ack a prepare.
func (c *Client) ShardPrepare(txn engine.Txn, gid []byte, mapVersion uint64, ops []PrepareOp) error {
	t, ok := txn.(*clientTxn)
	if !ok {
		return fmt.Errorf("client: ShardPrepare on a non-client transaction %T", txn)
	}
	if t.err != nil {
		return t.err
	}
	if t.done {
		return engine.ErrAborted
	}
	p := proto.AppendU64(nil, t.id)
	p = proto.AppendU64(p, c.epochMax.Load())
	p = proto.AppendU64(p, mapVersion)
	p = proto.AppendBytes(p, gid)
	p = proto.AppendU32(p, uint32(len(ops)))
	for _, op := range ops {
		p = proto.AppendU8(p, op.Op)
		p = proto.AppendBytes(p, []byte(op.Table))
		p = proto.AppendBytes(p, op.Key)
		p = proto.AppendBytes(p, op.Value)
	}
	st, detail, _, err := t.cn.call(proto.MsgShardPrepare, p)
	if err != nil {
		return t.fail(err)
	}
	if err := st.Err(detail); err != nil {
		return err
	}
	// The server now owns the transaction under gid; mark the handle spent
	// so a stray Commit/Abort cannot double-end it.
	t.done = true
	return nil
}

// ShardDecide delivers the coordinator's decision for a prepared
// transaction. It is idempotent: deciding an unknown (already resolved)
// gid answers OK, so coordinators may retry across connection losses and
// participant restarts until they get a positive ack. A commit decision
// acks only after the commit is durable under the server's policy.
func (c *Client) ShardDecide(gid []byte, commit bool) error {
	cn, err := c.conn(0)
	if err != nil {
		return err
	}
	p := proto.AppendBytes(nil, gid)
	flag := byte(0)
	if commit {
		flag = 1
	}
	p = proto.AppendU8(p, flag)
	st, detail, _, err := cn.call(proto.MsgShardDecide, p)
	if err != nil {
		return err
	}
	return st.Err(detail)
}

// ShardIdentity is a server's sharding self-description, fetched with
// FetchShardIdentity: which shard the server believes it is, under which
// shard-map version, plus the map blob it was configured with (empty when
// the operator did not embed one).
type ShardIdentity struct {
	ShardID    uint32
	MapVersion uint64
	MapBlob    []byte
}

// FetchShardIdentity asks the server which shard it serves. Routers call
// it at dial time to verify the address actually hosts the shard the map
// says it does, turning a mis-wired deployment into a typed
// engine.ErrShardMoved instead of silent mis-routing.
func (c *Client) FetchShardIdentity() (ShardIdentity, error) {
	cn, err := c.conn(0)
	if err != nil {
		return ShardIdentity{}, err
	}
	st, detail, d, err := cn.call(proto.MsgShardMap, nil)
	if err != nil {
		return ShardIdentity{}, err
	}
	if err := st.Err(detail); err != nil {
		return ShardIdentity{}, err
	}
	id := ShardIdentity{ShardID: d.U32(), MapVersion: d.U64()}
	id.MapBlob = append([]byte(nil), d.Bytes()...)
	return id, d.Err()
}
