package client_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ermia/internal/client"
	"ermia/internal/core"
	"ermia/internal/engine"
	"ermia/internal/engine/enginetest"
	"ermia/internal/server"
	"ermia/internal/wal"
)

// startServer serves db on a loopback listener and returns its address.
func startServer(t *testing.T, db engine.DB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	cfg.DB = db
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string, pool int) *client.Client {
	t.Helper()
	c, err := client.Dial(client.Options{Addr: addr, PoolSize: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestConformance runs the full engine conformance suite against a remote
// core engine through the wire protocol: the network client must be
// indistinguishable from an in-process engine.DB.
func TestConformance(t *testing.T) {
	for _, durability := range []server.Durability{server.DurabilityGroup, server.DurabilityNone} {
		t.Run(durability.String(), func(t *testing.T) {
			enginetest.Run(t, func(t *testing.T) engine.DB {
				db, err := core.Open(core.Config{
					WAL: wal.Config{SegmentSize: 4 << 20, BufferSize: 1 << 20},
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { db.Close() })
				_, addr := startServer(t, db, server.Config{Durability: durability})
				return dial(t, addr, 2)
			})
		})
	}
}

// TestPipelinedSingleConnection hammers one connection from many goroutines:
// requests interleave on the wire and group-commit acknowledgments come back
// out of order, all matched by request id.
func TestPipelinedSingleConnection(t *testing.T) {
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	_, addr := startServer(t, db, server.Config{})
	c := dial(t, addr, 1)

	tbl := c.CreateTable("t")
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				txn := c.Begin(id)
				key := []byte(fmt.Sprintf("w%d-%03d", id, i))
				if err := txn.Insert(tbl, key, []byte("v")); err != nil {
					t.Errorf("insert: %v", err)
					txn.Abort()
					return
				}
				if err := txn.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	txn := c.BeginReadOnly(0)
	defer txn.Abort()
	n := 0
	if err := txn.Scan(tbl, nil, nil, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != workers*per {
		t.Fatalf("found %d of %d pipelined inserts", n, workers*per)
	}
}

// TestReconnectAfterRestart is the indeterminacy contract end to end: the
// server is killed mid-workload and restarted from its log directory with
// Recover. Every commit the client saw acknowledged must be visible
// afterwards; every commit that errored must have mapped onto the retryable
// or unavailable parts of the outcome taxonomy — never silently dropped,
// never a fatal misclassification.
func TestReconnectAfterRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *core.DB {
		st, err := wal.NewDirStorage(dir)
		if err != nil {
			t.Fatal(err)
		}
		db, err := core.Recover(core.Config{
			WAL: wal.Config{SegmentSize: 4 << 20, BufferSize: 1 << 20, Storage: st},
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	db := open()
	srv, addr := startServer(t, db, server.Config{})

	c, err := client.Dial(client.Options{Addr: addr, PoolSize: 4, DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl := c.CreateTable("t")

	const workers, per = 4, 60
	acked := make([][]string, workers)
	var wg sync.WaitGroup
	killed := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%03d", id, i)
				txn := c.Begin(id)
				err := txn.Insert(tbl, []byte(key), []byte("v"))
				if err == nil {
					err = txn.Commit()
				} else {
					txn.Abort()
				}
				if err == nil {
					acked[id] = append(acked[id], key)
					continue
				}
				// Unacknowledged: must be retryable (indeterminate — conn
				// lost, overloaded) or unavailable (server refusing work).
				if !engine.IsRetryable(err) && engine.Classify(err) != engine.OutcomeUnavailable {
					t.Errorf("unacked commit %s: %v classified %v", key, err, engine.Classify(err))
				}
				<-killed // wait out the outage rather than burning attempts
			}
		}(w)
	}

	time.Sleep(30 * time.Millisecond) // let the workload get going
	srv.Close()                       // kill mid-workload: force-close every session
	db.Close()
	close(killed)

	// Restart on the same address from the log directory.
	db2 := open()
	defer db2.Close()
	srv2, err := server.New(server.Config{DB: db2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln)
	defer srv2.Close()

	wg.Wait()

	// The same client object reconnects transparently; every acknowledged
	// commit must be there.
	deadline := time.Now().Add(5 * time.Second)
	for {
		txn := c.BeginReadOnly(0)
		missing := ""
		var scanErr error
		for id := range acked {
			for _, key := range acked[id] {
				v, err := txn.Get(tbl, []byte(key))
				if err != nil {
					if errors.Is(err, engine.ErrNotFound) {
						missing = key
					} else {
						scanErr = err
					}
					break
				}
				if string(v) != "v" {
					t.Fatalf("acked key %s has value %q", key, v)
				}
			}
		}
		txn.Abort()
		if missing != "" {
			t.Fatalf("acknowledged commit %s lost across restart", missing)
		}
		if scanErr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("verification never converged: %v", scanErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBeginFailureSurfacesOnOps: engine.DB.Begin cannot return an error, so
// a dead server must surface as the retryable ErrConnLost on the
// transaction's operations — exactly what RunWithRetry needs to spin.
func TestBeginFailureSurfacesOnOps(t *testing.T) {
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, addr := startServer(t, db, server.Config{})
	c := dial(t, addr, 1)
	tbl := c.CreateTable("t")
	srv.Close()

	txn := c.Begin(0)
	if err := txn.Insert(tbl, []byte("k"), []byte("v")); !errors.Is(err, engine.ErrConnLost) {
		t.Fatalf("insert on dead server = %v, want ErrConnLost", err)
	}
	if err := txn.Commit(); !errors.Is(err, engine.ErrConnLost) || !engine.IsRetryable(err) {
		t.Fatalf("commit on dead server = %v, want retryable ErrConnLost", err)
	}
	txn.Abort() // must not panic or hang
}
