package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"ermia/internal/engine"
	"ermia/internal/proto"
)

// conn is one pipelined wire connection. Any number of goroutines may issue
// calls concurrently: writes are serialized under wmu, and a single reader
// goroutine dispatches responses to their waiters by request id — which is
// what lets the server acknowledge commits out of order from the group
// committer while the rest of the pipeline keeps flowing.
type conn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	pmu     sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	broken  bool
	cause   error
}

type response struct {
	typ     byte
	payload []byte
	err     error
}

func dialConn(addr string, timeout time.Duration) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // pipelined small frames must not wait on Nagle
	}
	c := &conn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]chan response),
	}
	go c.readLoop()
	return c, nil
}

func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		typ, id, payload, err := proto.ReadFrame(br)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if ok {
			ch <- response{typ: typ, payload: payload}
		}
	}
}

// fail marks the connection broken and releases every in-flight caller with
// the cause; their requests' outcomes are indeterminate.
func (c *conn) fail(cause error) {
	c.nc.Close()
	c.pmu.Lock()
	if !c.broken {
		c.broken = true
		c.cause = cause
	}
	pending := c.pending
	c.pending = make(map[uint64]chan response)
	c.pmu.Unlock()
	for _, ch := range pending {
		ch <- response{err: cause}
	}
}

func (c *conn) isBroken() bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.broken
}

func (c *conn) close() { c.fail(errClientClosed) }

// call performs one request/response exchange. Transport failures surface
// as engine.ErrConnLost so retry loops treat them like any other retryable
// conflict; protocol-level outcomes are carried in the returned status.
func (c *conn) call(typ byte, payload []byte) (proto.Status, string, *proto.Dec, error) {
	ch := make(chan response, 1)
	c.pmu.Lock()
	if c.broken {
		cause := c.cause
		c.pmu.Unlock()
		return 0, "", nil, connLost(cause)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	err := proto.WriteFrame(c.bw, typ, id, payload)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		c.fail(err)
		return 0, "", nil, connLost(err)
	}

	r := <-ch
	if r.err != nil {
		return 0, "", nil, connLost(r.err)
	}
	if r.typ != typ|proto.RespFlag {
		err := fmt.Errorf("%w: response type %#x for request %#x", proto.ErrBadFrame, r.typ, typ)
		c.fail(err)
		return 0, "", nil, connLost(err)
	}
	d := proto.NewDec(r.payload)
	st := d.Status()
	detail := string(d.Bytes())
	if d.Err() != nil {
		c.fail(d.Err())
		return 0, "", nil, connLost(d.Err())
	}
	return st, detail, d, nil
}

func connLost(cause error) error {
	return fmt.Errorf("%w: %v", engine.ErrConnLost, cause)
}
