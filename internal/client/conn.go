package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ermia/internal/engine"
	"ermia/internal/proto"
)

// conn is one pipelined wire connection. Any number of goroutines may issue
// calls concurrently: writes are serialized under wmu, and a single reader
// goroutine dispatches responses to their waiters by request id — which is
// what lets the server acknowledge commits out of order from the group
// committer while the rest of the pipeline keeps flowing.
type conn struct {
	nc net.Conn

	// reqTimeout is Options.RequestTimeout: stamped into each frame header
	// as the server-side budget, and doubled for the client-side wait.
	reqTimeout time.Duration

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	pmu     sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	broken  bool
	cause   error

	// lateCommits counts consecutive commits on this connection that died
	// of engine.ErrDeadlineExceeded; see clientTxn.Commit for why repeated
	// commit deadlines trigger a rotation probe.
	lateCommits atomic.Int32

	// counters points at the owning client's pool counters.
	counters *poolCounters
}

type response struct {
	typ     byte
	payload []byte
	err     error
}

// errRequestTimeout is the cause recorded when the client gives up waiting
// for a response; call maps it onto engine.ErrDeadlineExceeded.
var errRequestTimeout = errors.New("client: request timed out awaiting response")

func dialConn(addr string, opts Options, counters *poolCounters) (*conn, error) {
	dial := opts.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // pipelined small frames must not wait on Nagle
	}
	c := &conn{
		nc:         nc,
		reqTimeout: opts.RequestTimeout,
		bw:         bufio.NewWriterSize(nc, 64<<10),
		pending:    make(map[uint64]chan response),
		counters:   counters,
	}
	go c.readLoop()
	return c, nil
}

func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		typ, id, payload, err := proto.ReadFrame(br)
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if ok {
			ch <- response{typ: typ, payload: payload}
		}
	}
}

// fail marks the connection broken and releases every in-flight caller with
// the cause; their requests' outcomes are indeterminate.
func (c *conn) fail(cause error) {
	c.nc.Close()
	c.pmu.Lock()
	if !c.broken {
		c.broken = true
		c.cause = cause
		if !errors.Is(cause, errClientClosed) {
			c.counters.connLosses.Add(1)
		}
	}
	pending := c.pending
	c.pending = make(map[uint64]chan response)
	c.pmu.Unlock()
	for _, ch := range pending {
		ch <- response{err: cause}
	}
}

func (c *conn) isBroken() bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.broken
}

func (c *conn) close() { c.fail(errClientClosed) }

// call performs one request/response exchange. Transport failures surface
// as engine.ErrConnLost so retry loops treat them like any other retryable
// conflict; protocol-level outcomes are carried in the returned status.
func (c *conn) call(typ byte, payload []byte) (proto.Status, string, *proto.Dec, error) {
	ch := make(chan response, 1)
	c.pmu.Lock()
	if c.broken {
		cause := c.cause
		c.pmu.Unlock()
		return 0, "", nil, connLost(cause)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.pmu.Unlock()
	c.counters.requests.Add(1)

	var dlMillis uint32
	if c.reqTimeout > 0 {
		if dl := c.reqTimeout / time.Millisecond; dl > 0 {
			dlMillis = uint32(dl)
		} else {
			dlMillis = 1
		}
	}
	c.wmu.Lock()
	err := proto.WriteFrameD(c.bw, typ, id, dlMillis, payload)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		c.fail(err)
		return 0, "", nil, connLost(err)
	}

	var r response
	if c.reqTimeout > 0 {
		// Wait twice the budget: the server enforces the deadline at
		// dispatch, so a live connection answers (possibly with the typed
		// deadline status) well inside 2x. Silence past that means the
		// network ate the exchange; a pipeline with a hole in it cannot be
		// trusted, so the whole connection fails.
		timer := time.NewTimer(2 * c.reqTimeout)
		select {
		case r = <-ch:
			timer.Stop()
		case <-timer.C:
			c.fail(errRequestTimeout)
			r = <-ch // fail delivered the cause (or the response raced in)
		}
	} else {
		r = <-ch
	}
	if r.err != nil {
		if errors.Is(r.err, errRequestTimeout) {
			return 0, "", nil, fmt.Errorf("%w: %v", engine.ErrDeadlineExceeded, r.err)
		}
		return 0, "", nil, connLost(r.err)
	}
	if r.typ != typ|proto.RespFlag {
		err := fmt.Errorf("%w: response type %#x for request %#x", proto.ErrBadFrame, r.typ, typ)
		c.fail(err)
		return 0, "", nil, connLost(err)
	}
	d := proto.NewDec(r.payload)
	st := d.Status()
	detail := string(d.Bytes())
	if d.Err() != nil {
		c.fail(d.Err())
		return 0, "", nil, connLost(d.Err())
	}
	return st, detail, d, nil
}

// ping round-trips a MsgPing, returning the server's primary epoch and
// engine health state.
func (c *conn) ping() (epoch uint64, health engine.HealthState, err error) {
	st, detail, d, err := c.call(proto.MsgPing, nil)
	if err != nil {
		return 0, 0, err
	}
	if err := st.Err(detail); err != nil {
		return 0, 0, err
	}
	epoch = d.U64()
	health = engine.HealthState(d.U8())
	return epoch, health, d.Err()
}

func connLost(cause error) error {
	return fmt.Errorf("%w: %v", engine.ErrConnLost, cause)
}
