package client

import (
	"errors"

	"ermia/internal/engine"
	"ermia/internal/proto"
)

// clientTxn is one remote transaction, pinned to the pool connection whose
// server session owns it. Like engine transactions it is single-goroutine.
// A transport failure is sticky: every later operation (including Commit)
// reports the original engine.ErrConnLost, and the server aborts the
// orphaned transaction during session teardown.
type clientTxn struct {
	c    *Client
	cn   *conn
	id   uint64
	err  error // sticky failure; also set for a failed Begin
	done bool
}

// fail records the first transport failure.
func (t *clientTxn) fail(err error) error {
	if t.err == nil {
		t.err = err
	}
	return err
}

// table resolves the engine.Table argument, ensuring the table exists
// server-side if its creation was lost to a network failure.
func (t *clientTxn) table(tbl engine.Table) (*clientTable, error) {
	ct, ok := tbl.(*clientTable)
	if !ok {
		return nil, proto.ErrUnknownTable
	}
	if err := ct.ensure(t.cn); err != nil {
		return nil, err
	}
	return ct, nil
}

// op runs one keyed operation RPC and returns the response body decoder.
func (t *clientTxn) op(typ byte, tbl engine.Table, key, value []byte) (*proto.Dec, error) {
	if t.err != nil {
		return nil, t.err
	}
	if t.done {
		return nil, engine.ErrAborted
	}
	ct, err := t.table(tbl)
	if err != nil {
		return nil, t.fail(err)
	}
	for attempt := 0; ; attempt++ {
		p := proto.AppendU64(nil, t.id)
		p = proto.AppendBytes(p, []byte(ct.name))
		p = proto.AppendBytes(p, key)
		if typ == proto.MsgInsert || typ == proto.MsgUpdate {
			p = proto.AppendBytes(p, value)
		}
		st, detail, d, err := t.cn.call(typ, p)
		if err != nil {
			return nil, t.fail(err)
		}
		if err := st.Err(detail); err != nil {
			// A handle can go stale across a server restart that lost the
			// table's creation; re-create and retry once, transparently.
			if errors.Is(err, proto.ErrUnknownTable) && attempt == 0 {
				if err := ct.recreate(t.cn); err == nil {
					t.cn.counters.retries.Add(1)
					continue
				}
			}
			return nil, err // taxonomy error: not sticky, the txn may abort normally
		}
		return d, nil
	}
}

// Get implements engine.Txn.
func (t *clientTxn) Get(tbl engine.Table, key []byte) ([]byte, error) {
	d, err := t.op(proto.MsgGet, tbl, key, nil)
	if err != nil {
		return nil, err
	}
	v := d.Bytes()
	if err := d.Err(); err != nil {
		return nil, t.fail(connLost(err))
	}
	return v, nil
}

// Insert implements engine.Txn.
func (t *clientTxn) Insert(tbl engine.Table, key, value []byte) error {
	_, err := t.op(proto.MsgInsert, tbl, key, value)
	return err
}

// Update implements engine.Txn.
func (t *clientTxn) Update(tbl engine.Table, key, value []byte) error {
	_, err := t.op(proto.MsgUpdate, tbl, key, value)
	return err
}

// Delete implements engine.Txn.
func (t *clientTxn) Delete(tbl engine.Table, key []byte) error {
	_, err := t.op(proto.MsgDelete, tbl, key, nil)
	return err
}

// Scan implements engine.Txn. Large ranges page transparently: each page is
// one RPC inside the same server-side transaction, so the whole scan sees
// one snapshot and phantom protection covers the full range.
func (t *clientTxn) Scan(tbl engine.Table, lo, hi []byte, fn func(key, value []byte) bool) error {
	if t.err != nil {
		return t.err
	}
	if t.done {
		return engine.ErrAborted
	}
	ct, err := t.table(tbl)
	if err != nil {
		return t.fail(err)
	}
	cursor := lo
	recreated := false
	for {
		p := proto.AppendU64(nil, t.id)
		p = proto.AppendBytes(p, []byte(ct.name))
		p = proto.AppendU32(p, 0) // 0: server page size
		hasHi := byte(0)
		if hi != nil {
			hasHi = 1
		}
		p = proto.AppendU8(p, hasHi)
		p = proto.AppendBytes(p, cursor)
		p = proto.AppendBytes(p, hi)
		st, detail, d, err := t.cn.call(proto.MsgScan, p)
		if err != nil {
			return t.fail(err)
		}
		if err := st.Err(detail); err != nil {
			if errors.Is(err, proto.ErrUnknownTable) && !recreated {
				recreated = true
				if err := ct.recreate(t.cn); err == nil {
					t.cn.counters.retries.Add(1)
					continue
				}
			}
			return err
		}
		n := d.U32()
		var last []byte
		for i := uint32(0); i < n; i++ {
			k := d.Bytes()
			v := d.Bytes()
			if d.Err() != nil {
				break
			}
			last = k
			if !fn(k, v) {
				return nil
			}
		}
		more := d.U8()
		if err := d.Err(); err != nil {
			return t.fail(connLost(err))
		}
		if more == 0 {
			return nil
		}
		// Resume just past the last delivered key: its immediate successor
		// in bytewise order is last+0x00.
		cursor = append(append(make([]byte, 0, len(last)+1), last...), 0)
	}
}

// lateCommitLimit is how many consecutive deadline-expired commits one
// connection tolerates before the client rotates off it.
const lateCommitLimit = 2

// Commit implements engine.Txn. A positive response means the server's
// durability policy was satisfied; a lost connection means the outcome is
// indeterminate and surfaces as the retryable engine.ErrConnLost.
//
// A commit that dies of engine.ErrDeadlineExceeded is special-cased for
// failover: under semi-sync replication it is the one failure where the
// server is perfectly reachable yet cannot make progress (its replica is
// gone — possibly promoted elsewhere). Retrying against the same server
// would spin forever, so after lateCommitLimit consecutive occurrences the
// connection is failed and the address rotation advances, probing the
// fallback addresses; if none is healthier the rotation lands back here at
// the cost of one redial.
func (t *clientTxn) Commit() error {
	if t.err != nil {
		return t.err
	}
	if t.done {
		return engine.ErrAborted
	}
	t.done = true
	st, detail, _, err := t.cn.call(proto.MsgCommit, proto.AppendU64(nil, t.id))
	if err != nil {
		return err
	}
	err = st.Err(detail)
	switch {
	case err == nil:
		t.cn.lateCommits.Store(0)
	case errors.Is(err, engine.ErrDeadlineExceeded):
		if t.cn.lateCommits.Add(1) >= lateCommitLimit {
			t.c.rotate(t.cn, err)
		}
	}
	return err
}

// Abort implements engine.Txn. Best-effort over the wire: if the
// connection is gone the server-side session teardown aborts the orphan.
func (t *clientTxn) Abort() {
	if t.done {
		return
	}
	t.done = true
	if t.err != nil || t.cn == nil {
		return
	}
	t.cn.call(proto.MsgAbort, proto.AppendU64(nil, t.id))
}

var _ engine.Txn = (*clientTxn)(nil)
