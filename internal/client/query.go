package client

import (
	"ermia/internal/proto"
	"ermia/internal/query"
)

// RowIter streams one analytical query's result rows from the server. It is
// the client end of the pull-based query protocol: rows arrive in chunks,
// each fetched by an ordinary pipelined request when the local buffer runs
// dry, so a slow consumer throttles the server instead of flooding the
// connection. Not safe for concurrent use.
type RowIter struct {
	cn     *conn
	id     uint64
	arity  int
	buf    []query.Row
	pos    int
	done   bool
	closed bool
	err    error
}

// Query opens an analytical query on the server: the plan is validated,
// pinned to a read-only snapshot, and its results become pullable through
// the returned iterator. worker selects the pool connection, like Begin.
// The snapshot holds a server worker slot until the iterator is drained or
// closed — always Close it.
func (c *Client) Query(worker int, plan *query.Plan) (*RowIter, error) {
	return c.QueryMaxRows(worker, plan, 0)
}

// QueryMaxRows is Query with a client-side row budget: the server fails the
// query with engine.ErrQueryOverflow if the result would exceed maxRows.
// Zero means the server's own limit alone applies; a non-zero budget can
// lower the server limit but never raise it.
func (c *Client) QueryMaxRows(worker int, plan *query.Plan, maxRows uint32) (*RowIter, error) {
	enc, err := plan.Encode()
	if err != nil {
		return nil, err
	}
	cn, err := c.conn(worker)
	if err != nil {
		return nil, err
	}
	p := proto.AppendBytes(nil, enc)
	p = proto.AppendU32(p, maxRows)
	st, detail, d, err := cn.call(proto.MsgQuery, p)
	if err != nil {
		return nil, err
	}
	if err := st.Err(detail); err != nil {
		return nil, err
	}
	id := d.U64()
	arity := d.U32()
	if d.Err() != nil {
		return nil, connLost(d.Err())
	}
	return &RowIter{cn: cn, id: id, arity: int(arity)}, nil
}

// Arity returns the number of columns in each result row.
func (it *RowIter) Arity() int { return it.arity }

// Next returns the next result row, or (nil, nil) at end of stream. Errors
// are sticky; after one the stream is dead server-side.
func (it *RowIter) Next() (query.Row, error) {
	if it.err != nil {
		return nil, it.err
	}
	for {
		if it.pos < len(it.buf) {
			row := it.buf[it.pos]
			it.pos++
			return row, nil
		}
		if it.done || it.closed {
			return nil, nil
		}
		if err := it.pull(); err != nil {
			it.err = err
			return nil, err
		}
	}
}

// pull fetches the next chunk of rows from the server.
func (it *RowIter) pull() error {
	st, detail, d, err := it.cn.call(proto.MsgQueryRow, proto.AppendU64(nil, it.id))
	if err != nil {
		return err
	}
	if err := st.Err(detail); err != nil {
		return err
	}
	done := d.U8() == 1
	n := d.U32()
	raw := d.Rest()
	if d.Err() != nil {
		return connLost(d.Err())
	}
	rows, err := query.DecodeRows(raw, int(n))
	if err != nil {
		return connLost(err)
	}
	it.buf, it.pos = rows, 0
	it.done = done
	return nil
}

// Close releases the query's snapshot and worker slot on the server. It is
// a no-op after the stream completed (the server already released) and is
// safe to call more than once.
func (it *RowIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.buf, it.pos = nil, 0
	if it.done || it.err != nil {
		// Stream completion and error frames both end the query server-side.
		return nil
	}
	st, detail, _, err := it.cn.call(proto.MsgQueryEnd, proto.AppendU64(nil, it.id))
	if err != nil {
		return err
	}
	return st.Err(detail)
}

// QueryAll opens the query and drains it into a slice, closing the stream.
func (c *Client) QueryAll(worker int, plan *query.Plan) ([]query.Row, error) {
	it, err := c.Query(worker, plan)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []query.Row
	for {
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}
