package vet

import (
	"go/ast"
	"strings"
)

// directive is one parsed "//ermia:<verb> <args...>" comment. The comment
// convention follows go:build style: no space after "//", so ordinary prose
// never parses as a directive.
type directive struct {
	verb string
	args []string
	// raw is everything after the verb, for free-text reasons.
	raw string
}

func parseDirective(text string) (directive, bool) {
	rest, ok := strings.CutPrefix(text, "//ermia:")
	if !ok {
		return directive{}, false
	}
	verb, raw, _ := strings.Cut(rest, " ")
	verb = strings.TrimSpace(verb)
	if verb == "" {
		return directive{}, false
	}
	raw = strings.TrimSpace(raw)
	return directive{verb: verb, args: strings.Fields(raw), raw: raw}, true
}

// directivesIn returns the parsed directives of a comment group.
func directivesIn(doc *ast.CommentGroup) []directive {
	if doc == nil {
		return nil
	}
	var out []directive
	for _, c := range doc.List {
		if d, ok := parseDirective(c.Text); ok {
			out = append(out, d)
		}
	}
	return out
}

// hasDirective reports whether the comment group carries the verb, and
// returns the first matching directive.
func hasDirective(doc *ast.CommentGroup, verb string) (directive, bool) {
	for _, d := range directivesIn(doc) {
		if d.verb == verb {
			return d, true
		}
	}
	return directive{}, false
}

// fileHasDirective reports whether any comment anywhere in the file carries
// the verb (used for file-scoped marks like //ermia:deterministic).
func fileHasDirective(f *ast.File, verb string) bool {
	for _, cg := range f.Comments {
		if _, ok := hasDirective(cg, verb); ok {
			return true
		}
	}
	if _, ok := hasDirective(f.Doc, verb); ok {
		return true
	}
	return false
}
