package vet

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WireCompat freezes the wire protocol's numeric registries against a
// committed golden file, protecting mixed-version replication and
// failover: a primary on one build streams to replicas on another, and a
// client that learned StatusTailTruncated as 16 must keep meaning the same
// thing to every future server. The registries are the proto package's
// Msg* message-type constants and Status codes; both are assigned by iota,
// so an innocent insertion in the middle of the const block silently
// renumbers everything below it — the exact bug shape the "appended ...
// to keep existing wire values stable" comments in the proto package are
// defending against by convention. This analyzer turns the convention into
// a gate:
//
//   - every Msg*/Status constant must appear in internal/proto/wire.golden
//     with its current value (new constants are appended with
//     `ermia-vet -update-wire-golden`, a reviewable diff);
//   - a value drifting from the golden is a renumber; a new constant
//     taking a value the golden assigns to another name is an insertion;
//   - golden entries may leave the code only by being retired in place
//     (rewrite `msg MsgOld 7` to `retired msg MsgOld 7`), and retired
//     values may never be reused;
//   - no two live constants of one kind may share a value.
//
// The golden file lives next to the code it freezes and is line-oriented:
// '#' comments, then `msg <Name> <value>`, `status <Name> <value>`, and
// `retired <kind> <Name> <value>` entries in any order.
var WireCompat = &Analyzer{
	Name: "wirecompat",
	Doc:  "proto message-type and status registries are append-only against wire.golden",
	Run:  runWireCompat,
}

// WireGoldenName is the registry file's name inside the proto package.
const WireGoldenName = "wire.golden"

// wireConst is one live registry constant in the code.
type wireConst struct {
	kind  string // "msg" or "status"
	name  string
	value int64
	pos   token.Pos
}

// wireEntry is one golden-file line.
type wireEntry struct {
	kind    string
	name    string
	value   int64
	retired bool
	line    int
}

func runWireCompat(m *Module) []Finding {
	pkg := m.LookupSuffix("internal/proto")
	if pkg == nil {
		return nil
	}
	consts, anchors := wireConsts(pkg)
	if len(consts) == 0 {
		return nil
	}
	goldenPath := filepath.Join(pkg.Dir, WireGoldenName)
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Analyzer: "wirecompat",
			Pos:      m.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		report(anchors["msg"], "wire registry golden %s is missing; generate it with `ermia-vet -update-wire-golden` and commit it", WireGoldenName)
		return out
	}
	entries, perr := parseWireGolden(string(data))
	if perr != "" {
		report(anchors["msg"], "wire registry golden %s is malformed: %s", WireGoldenName, perr)
		return out
	}

	type key struct {
		kind, name string
	}
	live := make(map[key]wireEntry)
	retiredVals := make(map[string]map[int64]string) // kind -> value -> retired name
	goldenByVal := make(map[string]map[int64]string) // kind -> value -> live golden name
	for _, e := range entries {
		if e.retired {
			if retiredVals[e.kind] == nil {
				retiredVals[e.kind] = make(map[int64]string)
			}
			retiredVals[e.kind][e.value] = e.name
			continue
		}
		if prev, dup := live[key{e.kind, e.name}]; dup {
			report(anchors[e.kind], "wire registry golden %s lists %s %s twice (lines %d and %d)", WireGoldenName, e.kind, e.name, prev.line, e.line)
			continue
		}
		live[key{e.kind, e.name}] = e
		if goldenByVal[e.kind] == nil {
			goldenByVal[e.kind] = make(map[int64]string)
		}
		goldenByVal[e.kind][e.value] = e.name
	}

	// Code-side walk, in source order.
	seenVals := make(map[string]map[int64]string) // kind -> value -> first code name
	inCode := make(map[key]bool)
	for _, c := range consts {
		k := key{c.kind, c.name}
		inCode[k] = true
		if seenVals[c.kind] == nil {
			seenVals[c.kind] = make(map[int64]string)
		}
		first, dup := seenVals[c.kind][c.value]
		if !dup {
			seenVals[c.kind][c.value] = c.name
		}

		if g, ok := live[k]; ok {
			if g.value != c.value {
				report(c.pos, "%s is renumbered: wire value %d in code but %d in %s — appended constants must go at the end of the block, and committed values are frozen", c.name, c.value, g.value, WireGoldenName)
			}
			continue
		}
		// Not in the golden: diagnose the most specific cause.
		switch {
		case goldenByVal[c.kind][c.value] != "":
			report(c.pos, "%s takes wire value %d, which %s assigns to %s — it was inserted mid-block and renumbered everything after it", c.name, c.value, WireGoldenName, goldenByVal[c.kind][c.value])
		case retiredVals[c.kind][c.value] != "":
			report(c.pos, "%s reuses retired wire value %d (previously %s); retired values are dead forever — old peers still interpret them", c.name, c.value, retiredVals[c.kind][c.value])
		case dup:
			report(c.pos, "%s duplicates live wire value %d already taken by %s", c.name, c.value, first)
		default:
			report(c.pos, "%s (wire value %d) is not in %s; append it with `ermia-vet -update-wire-golden` and commit the diff", c.name, c.value, WireGoldenName)
		}
	}

	// Golden entries gone from the code without being retired.
	var removed []wireEntry
	for k, e := range live {
		if !inCode[k] {
			removed = append(removed, e)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].line < removed[j].line })
	for _, e := range removed {
		report(anchors[e.kind], "golden entry %s %s (wire value %d) is no longer declared; deleting a wire constant breaks old peers — retire it in %s instead (`retired %s %s %d`)",
			e.kind, e.name, e.value, WireGoldenName, e.kind, e.name, e.value)
	}
	return out
}

// wireConsts collects the registry constants: Msg*-named byte constants
// and constants of the package's Status type. anchors maps each kind to a
// stable code position (the first constant of that kind) for findings that
// have no constant of their own to point at.
func wireConsts(pkg *Package) ([]wireConst, map[string]token.Pos) {
	var out []wireConst
	anchors := map[string]token.Pos{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					kind := wireKindOf(pkg, obj)
					if kind == "" {
						continue
					}
					v, ok := constant.Int64Val(constant.ToInt(obj.Val()))
					if !ok {
						continue
					}
					if _, have := anchors[kind]; !have {
						anchors[kind] = name.Pos()
					}
					out = append(out, wireConst{kind: kind, name: obj.Name(), value: v, pos: name.Pos()})
				}
			}
		}
	}
	// Findings about one kind may anchor at the other if a kind is absent.
	if _, ok := anchors["msg"]; !ok {
		anchors["msg"] = anchors["status"]
	}
	if _, ok := anchors["status"]; !ok {
		anchors["status"] = anchors["msg"]
	}
	return out, anchors
}

func wireKindOf(pkg *Package, obj *types.Const) string {
	if named, ok := obj.Type().(*types.Named); ok &&
		named.Obj().Name() == "Status" && named.Obj().Pkg() == pkg.Types {
		return "status"
	}
	if strings.HasPrefix(obj.Name(), "Msg") {
		if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return "msg"
		}
	}
	return ""
}

func parseWireGolden(data string) (entries []wireEntry, errMsg string) {
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		bad := func() ([]wireEntry, string) {
			return nil, fmt.Sprintf("line %d: want `msg <Name> <value>`, `status <Name> <value>`, or `retired <kind> <Name> <value>`, got %q", i+1, line)
		}
		e := wireEntry{line: i + 1}
		if f[0] == "retired" {
			if len(f) != 4 {
				return bad()
			}
			e.retired = true
			f = f[1:]
		} else if len(f) != 3 {
			return bad()
		}
		e.kind = f[0]
		if e.kind != "msg" && e.kind != "status" {
			return bad()
		}
		e.name = f[1]
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return bad()
		}
		e.value = v
		entries = append(entries, e)
	}
	return entries, ""
}

// WriteWireGolden (re)generates the golden registry from the code,
// preserving existing retired entries; returns the path written. This is
// the only sanctioned way to change the file: the diff it produces is
// append-only when the code change was, and a reviewer sees exactly which
// values a renumber would rewrite.
func WriteWireGolden(m *Module) (string, error) {
	pkg := m.LookupSuffix("internal/proto")
	if pkg == nil {
		return "", fmt.Errorf("vet: module has no internal/proto package")
	}
	consts, _ := wireConsts(pkg)
	if len(consts) == 0 {
		return "", fmt.Errorf("vet: internal/proto declares no wire registry constants")
	}
	path := filepath.Join(pkg.Dir, WireGoldenName)

	var retired []wireEntry
	if data, err := os.ReadFile(path); err == nil {
		if entries, perr := parseWireGolden(string(data)); perr == "" {
			for _, e := range entries {
				if e.retired {
					retired = append(retired, e)
				}
			}
		}
	}

	sort.SliceStable(consts, func(i, j int) bool {
		if consts[i].kind != consts[j].kind {
			return consts[i].kind == "msg"
		}
		return consts[i].value < consts[j].value
	})
	var b strings.Builder
	b.WriteString("# ermia wire registry — append-only; values are frozen once committed.\n")
	b.WriteString("# Regenerate with `ermia-vet -update-wire-golden` (appends new constants);\n")
	b.WriteString("# to drop a constant, rewrite its line as `retired <kind> <Name> <value>`.\n")
	for _, c := range consts {
		fmt.Fprintf(&b, "%s %s %d\n", c.kind, c.name, c.value)
	}
	for _, e := range retired {
		fmt.Fprintf(&b, "retired %s %s %d\n", e.kind, e.name, e.value)
	}
	return path, os.WriteFile(path, []byte(b.String()), 0o644)
}
