package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix flags struct fields that are accessed both through sync/atomic
// functions (atomic.LoadUint64(&s.f), atomic.AddInt32(&s.f, 1), ...) and by
// plain load/store anywhere in the module. Mixing the two is the classic
// torn-stamp bug class: the plain access is a data race the race detector
// only catches under lucky interleavings, and on relaxed hardware it can
// observe a half-written value. Fields of the typed atomic kinds
// (atomic.Uint64 and friends) are immune by construction — the type system
// already forbids plain access — which is why the engine uses them; this
// pass guards the boundary for code that reverts to the function style.
//
// Struct-literal keys (T{f: v}) are not counted: initialization before
// publication is the conventional exception to the protocol.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag struct fields accessed both via sync/atomic and by plain load/store",
	Run:  runAtomicMix,
}

type fieldAccess struct {
	atomicPos []token.Position
	plainPos  []token.Position
}

func runAtomicMix(m *Module) []Finding {
	acc := make(map[*types.Var]*fieldAccess)
	rec := func(field *types.Var, pos token.Position, atomic bool) {
		a := acc[field]
		if a == nil {
			a = &fieldAccess{}
			acc[field] = a
		}
		if atomic {
			a.atomicPos = append(a.atomicPos, pos)
		} else {
			a.plainPos = append(a.plainPos, pos)
		}
	}

	for _, p := range m.Pkgs {
		// First pass per file: selector expressions that are the &-operand
		// of a sync/atomic call are atomic accesses.
		atomicSel := make(map[ast.Expr]bool)
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || !pkgPathIs(obj.Pkg(), "sync/atomic") {
					return true
				}
				for _, arg := range call.Args {
					if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
						atomicSel[ast.Unparen(un.X)] = true
					}
				}
				return true
			})
		}
		// Second pass: classify every field selector.
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := p.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				field, ok := s.Obj().(*types.Var)
				if !ok {
					return true
				}
				rec(field, m.Fset.Position(sel.Sel.Pos()), atomicSel[sel])
				return true
			})
		}
	}

	var out []Finding
	for field, a := range acc {
		if len(a.atomicPos) == 0 || len(a.plainPos) == 0 {
			continue
		}
		sort.Slice(a.plainPos, func(i, j int) bool { return posLess(a.plainPos[i], a.plainPos[j]) })
		sort.Slice(a.atomicPos, func(i, j int) bool { return posLess(a.atomicPos[i], a.atomicPos[j]) })
		for _, pp := range a.plainPos {
			out = append(out, Finding{
				Analyzer: "atomicmix",
				Pos:      pp,
				Message: fmt.Sprintf("plain access to field %s, which is accessed atomically at %s; every access must go through sync/atomic (or migrate the field to a typed atomic)",
					fieldName(field), shortPos(m, a.atomicPos[0])),
			})
		}
	}
	return out
}

func fieldName(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// shortPos renders a position relative to the module root for messages.
func shortPos(m *Module, p token.Position) string {
	name := p.Filename
	if rel := strings.TrimPrefix(name, m.Root+"/"); rel != name {
		name = rel
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
