package vet

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// NoDeterminism polices the byte-reproducibility contract of the
// crash-sweep and replay infrastructure. A file marked with an
// "//ermia:deterministic" comment promises that its behaviour is a pure
// function of its inputs (seed + crash point); inside such files the pass
// forbids:
//
//   - clock reads: time.Now, time.Since, time.Until;
//   - math/rand and math/rand/v2 (use the seeded internal/xrand instead);
//   - ranging over a map, whose iteration order Go randomizes per run.
//
// A map range that is genuinely order-insensitive can be suppressed with a
// justified "//ermia:allow nodeterminism <reason>" on the offending line,
// but sorting the keys is almost always the better fix: it keeps failure
// reproductions byte-identical from the printed seed alone.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid clocks, math/rand, and map iteration in //ermia:deterministic files",
	Run:  runNoDeterminism,
}

func runNoDeterminism(m *Module) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		for _, file := range p.Files {
			if !fileHasDirective(file, "deterministic") {
				continue
			}
			fname := m.Fset.Position(file.Pos()).Filename

			// Imports: math/rand in a deterministic file is wrong whatever
			// it is used for; even a locally seeded source shares global
			// state via rand.Seed-era helpers and invites drift.
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					out = append(out, Finding{
						Analyzer: "nodeterminism",
						Pos:      m.Fset.Position(imp.Pos()),
						Message:  fmt.Sprintf("deterministic file %s imports %s; use the seeded internal/xrand instead", baseName(fname), path),
					})
				}
			}

			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					callee := calleeOf(p.Info, n)
					if callee == nil {
						return true
					}
					if pkgPathIs(callee.Pkg(), "time") {
						switch callee.Name() {
						case "Now", "Since", "Until":
							out = append(out, Finding{
								Analyzer: "nodeterminism",
								Pos:      m.Fset.Position(n.Pos()),
								Message:  fmt.Sprintf("time.%s in deterministic file: the result must be a pure function of seed and input, not the clock", callee.Name()),
							})
						}
					}
				case *ast.RangeStmt:
					tv, ok := p.Info.Types[n.X]
					if !ok {
						return true
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						out = append(out, Finding{
							Analyzer: "nodeterminism",
							Pos:      m.Fset.Position(n.Pos()),
							Message:  "map iteration order is randomized per run; iterate a sorted key slice (or justify with //ermia:allow nodeterminism <reason>)",
						})
					}
				}
				return true
			})
		}
	}
	return out
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
