package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CancelPoll enforces the PR 8 cancellation invariant structurally: every
// potentially-unbounded loop in a function annotated
//
//	//ermia:cancellable <what stops this code>
//
// must provably poll a cancel signal each iteration, so drain, failover,
// and query cancellation cannot be stalled by a loop that never looks up.
// A loop polls if its body (or condition) does any of:
//
//   - execute a select statement, or send/receive on a channel (a closed
//     or signalled channel unblocks it);
//   - range over a channel (the range ends when the channel closes);
//   - call Err/Done/Deadline on a context.Context;
//   - call a function annotated //ermia:cancelpoint <reason> — an audited
//     assertion that the callee returns promptly once cancellation is
//     requested (the session read loop's frame read, which fails once the
//     connection is closed or deadlined; the query executor's cancelled()
//     hook);
//   - call another //ermia:cancellable function (the obligation moves to
//     the callee's own loops).
//
// Counted three-clause loops (for i := 0; i < n; i++) and ranges over
// slices, maps, arrays, strings, and integers are bounded by construction
// and exempt; `for {}`, `for cond {}`, and ranges over channels or
// iterator functions are where unbounded waits live.
//
// The annotation is deliberately opt-in per function: marking a function
// cancellable is the reviewable act of saying "this runs on the serve or
// replication path and must yield to shutdown", and the analyzer then
// keeps every future edit honest.
var CancelPoll = &Analyzer{
	Name: "cancelpoll",
	Doc:  "every loop in //ermia:cancellable code must poll its cancel signal",
	Run:  runCancelPoll,
}

func runCancelPoll(m *Module) []Finding {
	// Pass 1: collect cancelpoint and cancellable annotations.
	cancelpoints := make(map[*types.Func]bool)
	cancellable := make(map[*types.Func]bool)
	var out []Finding

	funcs := moduleFuncs(m)
	for obj, fi := range funcs {
		if d, ok := hasDirective(fi.decl.Doc, "cancelpoint"); ok {
			cancelpoints[obj] = true
			if strings.TrimSpace(d.raw) == "" {
				out = append(out, Finding{
					Analyzer: "cancelpoll",
					Pos:      m.Fset.Position(fi.decl.Name.Pos()),
					Message: fmt.Sprintf("cancelpoint annotation on %s carries no reason; say why it returns promptly once cancellation is requested",
						obj.Name()),
				})
			}
		}
		if _, ok := hasDirective(fi.decl.Doc, "cancellable"); ok {
			cancellable[obj] = true
		}
	}

	// Pass 2: check every loop in every cancellable function.
	for obj, fi := range funcs {
		if !cancellable[obj] || fi.decl.Body == nil {
			continue
		}
		c := &cancelCheck{m: m, pkg: fi.pkg, fname: obj.Name(), cancelpoints: cancelpoints, cancellable: cancellable}
		c.walk(fi.decl.Body)
		if !c.sawLoop {
			out = append(out, Finding{
				Analyzer: "cancelpoll",
				Pos:      m.Fset.Position(fi.decl.Name.Pos()),
				Message: fmt.Sprintf("cancellable annotation on %s asserts nothing: the function has no loops; drop it or move it to the looping callee",
					obj.Name()),
			})
		}
		out = append(out, c.findings...)
	}
	return out
}

type cancelCheck struct {
	m            *Module
	pkg          *Package
	fname        string
	cancelpoints map[*types.Func]bool
	cancellable  map[*types.Func]bool
	findings     []Finding
	sawLoop      bool
}

// walk visits statements looking for loops; nested loops are each checked
// on their own (an inner poll also satisfies the outer loop, because it is
// inside the outer body).
func (c *cancelCheck) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			c.sawLoop = true
			if forIsCounted(n) {
				return true
			}
			if !c.polls(n.Body) && !(n.Cond != nil && c.pollsExpr(n.Cond)) {
				c.report(n.Pos(), "unbounded loop")
			}
		case *ast.RangeStmt:
			c.sawLoop = true
			if c.rangeIsBounded(n) {
				return true
			}
			// Ranging over a channel is itself the poll; over an iterator
			// function the body must poll.
			if c.rangeOverChannel(n) {
				return true
			}
			if !c.polls(n.Body) {
				c.report(n.Pos(), "range over an iterator function")
			}
		case *ast.FuncLit:
			// A closure has its own (un)annotated identity; its loops are
			// not this function's loops.
			return false
		}
		return true
	})
}

func (c *cancelCheck) report(pos token.Pos, what string) {
	c.findings = append(c.findings, Finding{
		Analyzer: "cancelpoll",
		Pos:      c.m.Fset.Position(pos),
		Message: fmt.Sprintf("%s in cancellable function %s never polls a cancel signal: add a select/channel op, a context Err/Done check, or a call to a //ermia:cancelpoint function",
			what, c.fname),
	})
}

// forIsCounted: a classic three-clause counted loop is bounded by
// construction.
func forIsCounted(n *ast.ForStmt) bool {
	return n.Init != nil && n.Cond != nil && n.Post != nil
}

func (c *cancelCheck) rangeIsBounded(n *ast.RangeStmt) bool {
	t := c.pkg.Info.TypeOf(n.X)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Array, *types.Basic, *types.Pointer:
		// Pointer covers *[N]T; Basic covers range-over-int and strings.
		return true
	}
	return false
}

func (c *cancelCheck) rangeOverChannel(n *ast.RangeStmt) bool {
	t := c.pkg.Info.TypeOf(n.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// polls reports whether the loop body contains an accepted cancel poll.
// Nested function literals do not count: they only run if called, and a
// called one shows up as a call expression we cannot see through — the
// convention is to annotate the named function instead.
func (c *cancelCheck) polls(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.SendStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if c.rangeOverChannel(n) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if c.callPolls(n) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (c *cancelCheck) pollsExpr(x ast.Expr) bool {
	return c.polls(x)
}

func (c *cancelCheck) callPolls(call *ast.CallExpr) bool {
	// context.Context method calls: Err, Done, Deadline.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Err", "Done", "Deadline":
			if t := c.pkg.Info.TypeOf(sel.X); t != nil && isContextType(t) {
				return true
			}
		}
	}
	callee := calleeOf(c.pkg.Info, call)
	if callee == nil {
		// Interface dispatch: resolve through the selection for methods
		// declared on module interfaces (we key annotations by the
		// concrete *types.Func of declared functions only, so dynamic
		// calls cannot match a cancelpoint and conservatively don't
		// count).
		return false
	}
	return c.cancelpoints[callee] || c.cancellable[callee]
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Context" && pkgPathIs(named.Obj().Pkg(), "context")
}
