package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EpochGuard proves, one call edge at a time, that version-chain
// dereferences stay under an epoch guard. Two annotations drive it:
//
//	//ermia:guarded
//	  The function dereferences epoch-protected state (walks a version
//	  chain, loads an indirection-array head). It may only be called —
//	  or referenced as a function value — from functions that are
//	  themselves //ermia:guarded or //ermia:guard-entry.
//
//	//ermia:guard-entry <reason>
//	  The function is an audited guard boundary: it either calls
//	  (epoch.Slot).Enter directly before touching protected state, or the
//	  annotation carries a non-empty reason explaining why the guard is
//	  already active in its dynamic extent (e.g. the transaction lifecycle
//	  enters the slot at Begin and exits at finish). A guard-entry with
//	  neither is flagged: the annotation would be an unaudited assertion.
//
// Induction over the intra-module call graph then gives the paper's §3.4
// property: every path that reaches a chain dereference passes through an
// epoch entry (or an explicitly audited boundary). Dynamic calls through
// interfaces cannot be resolved statically; the audit reasons carry those.
var EpochGuard = &Analyzer{
	Name: "epochguard",
	Doc:  "prove //ermia:guarded functions are only reachable under an epoch guard",
	Run:  runEpochGuard,
}

const (
	guardNone = iota
	guardGuarded
	guardEntry
)

func runEpochGuard(m *Module) []Finding {
	funcs := moduleFuncs(m)

	// Annotation table.
	kind := make(map[*types.Func]int)
	reason := make(map[*types.Func]string)
	for obj, fi := range funcs {
		if _, ok := hasDirective(fi.decl.Doc, "guarded"); ok {
			kind[obj] = guardGuarded
		}
		if d, ok := hasDirective(fi.decl.Doc, "guard-entry"); ok {
			if kind[obj] == guardGuarded {
				// Both annotations on one function is a contradiction.
				continue
			}
			kind[obj] = guardEntry
			reason[obj] = d.raw
		}
	}

	var out []Finding

	// Rule 1: a guard-entry function must call Slot.Enter directly or carry
	// an audit reason.
	for obj, fi := range funcs {
		if kind[obj] != guardEntry {
			continue
		}
		if strings.TrimSpace(reason[obj]) != "" {
			continue
		}
		if callsEpochEnter(fi) {
			continue
		}
		out = append(out, Finding{
			Analyzer: "epochguard",
			Pos:      m.Fset.Position(fi.decl.Name.Pos()),
			Message: fmt.Sprintf("guard-entry function %s neither calls (epoch.Slot).Enter nor gives an audit reason; write //ermia:guard-entry <why the guard is already active>",
				fi.obj.Name()),
		})
	}

	// Rule 2: every static use of a guarded function must sit inside a
	// guarded or guard-entry function.
	for _, p := range m.Pkgs {
		callPos := callCalleePositions(p)
		eachFuncBody(p, func(decl *ast.FuncDecl, body ast.Node) {
			var encl *types.Func
			if decl != nil {
				encl, _ = p.Info.Defs[decl.Name].(*types.Func)
			}
			enclOK := encl != nil && kind[encl] != guardNone
			ast.Inspect(body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				target, ok := p.Info.Uses[id].(*types.Func)
				if !ok || kind[target] != guardGuarded {
					return true
				}
				if enclOK {
					return true
				}
				enclName := "package-level initializer"
				hint := ""
				if encl != nil {
					enclName = "unguarded function " + encl.Name()
					hint = fmt.Sprintf(" (annotate %s with //ermia:guarded or //ermia:guard-entry <reason>)", encl.Name())
				}
				verb := "reference to"
				if callPos[id.Pos()] {
					verb = "call to"
				}
				out = append(out, Finding{
					Analyzer: "epochguard",
					Pos:      m.Fset.Position(id.Pos()),
					Message: fmt.Sprintf("%s epoch-guarded function %s from %s%s",
						verb, target.Name(), enclName, hint),
				})
				return true
			})
		})
	}
	return out
}

// callCalleePositions records the positions of identifiers that appear as
// the callee of a call expression, so uses can be labelled call vs escape.
func callCalleePositions(p *Package) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				out[fun.Pos()] = true
			case *ast.SelectorExpr:
				out[fun.Sel.Pos()] = true
			}
			return true
		})
	}
	return out
}

// callsEpochEnter reports whether the function body contains a direct call
// to a method named Enter on a type from an epoch package (import path
// ending in "internal/epoch").
func callsEpochEnter(fi *funcInfo) bool {
	if fi.decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(fi.pkg.Info, call)
		if callee == nil || callee.Name() != "Enter" {
			return true
		}
		if pkg := callee.Pkg(); pkg != nil && (pkg.Path() == "internal/epoch" || strings.HasSuffix(pkg.Path(), "/epoch")) {
			found = true
			return false
		}
		return true
	})
	return found
}
