package vet

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baselines let a new analyzer land warn-first: snapshot today's findings
// with -update-baseline, gate against the snapshot with -baseline, then
// burn the file down to empty and delete it when the analyzer is promoted
// to a hard gate. The file is exactly the -json output format, so
// `ermia-vet -json > vet-baseline.json` and `-update-baseline` agree.
//
// Matching is line-agnostic — (analyzer, file, message) — so unrelated
// edits that shift line numbers don't resurrect baselined findings, while
// a baselined file still can't accumulate new instances of the same
// finding class beyond the snapshot's count.

// Baseline is a loaded findings snapshot: a multiset keyed by
// (analyzer, file, message).
type Baseline map[baselineKey]int

type baselineKey struct {
	Analyzer string
	File     string
	Message  string
}

// WriteBaseline snapshots findings to path in the -json output format.
func WriteBaseline(path string, fs []Finding) error {
	b, err := JSON(fs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadBaseline reads a snapshot written by WriteBaseline (or `-json`
// output redirected to a file).
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []jsonFinding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("vet: baseline %s: %w", path, err)
	}
	b := make(Baseline, len(entries))
	for _, e := range entries {
		b[baselineKey{e.Analyzer, e.File, e.Message}]++
	}
	return b, nil
}

// Filter returns the findings not covered by the baseline. Each baseline
// entry absorbs at most one finding, so growth beyond the snapshot's count
// still gates. The baseline is consumed; load a fresh one per run.
func (b Baseline) Filter(fs []Finding) []Finding {
	out := fs[:0:0]
	for _, f := range fs {
		k := baselineKey{f.Analyzer, f.Pos.Filename, f.Message}
		if b[k] > 0 {
			b[k]--
			continue
		}
		out = append(out, f)
	}
	return out
}
