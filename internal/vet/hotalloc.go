package vet

import (
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// HotAlloc gates functions annotated
//
//	//ermia:hotpath <why this is hot>
//
// to zero heap escapes, by running the real compiler's escape analysis
// (`go build -gcflags=-m`) over the module and mapping every "escapes to
// heap" / "moved to heap" diagnostic back to the annotated function's body
// span. This is ROADMAP item 3's allocation discipline as a gate instead
// of a hope: the frame encode/decode helpers, the session writer, the
// group-commit ack path, and the mvcc visibility accessors run once per
// request (or per version-chain hop) on every connection, and a single
// boxed value or heap-spilled buffer there is a per-op allocation the
// 1→4-client scaling curve pays for forever.
//
// The analyzer shells out to the module's own toolchain rather than
// reimplementing escape analysis: the compiler's verdict is the one that
// ships, it replays -m diagnostics from the build cache on repeat runs (no
// -a rebuild needed), and the diagnostics carry exact positions. Only the
// two allocation verdicts count — "leaking param" (a fact about callers,
// not an allocation) and inlining chatter are ignored.
//
// Escapes that are the function's documented job (e.g. a decoder that
// intentionally returns a fresh payload slice) do not belong on the hot
// path-gate at all: budget them with an AllocsPerRun regression test
// instead of annotating, or suppress the one line with //ermia:allow
// hotalloc and a reason.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//ermia:hotpath functions must have zero heap escapes per go build -gcflags=-m",
	Run:  runHotAlloc,
}

// hotSpan is one annotated function's body extent.
type hotSpan struct {
	file     string // absolute path
	from, to int    // body line span, inclusive
	name     string
}

func runHotAlloc(m *Module) []Finding {
	var spans []hotSpan
	var out []Finding
	for obj, fi := range moduleFuncs(m) {
		d, ok := hasDirective(fi.decl.Doc, "hotpath")
		if !ok {
			continue
		}
		if fi.decl.Body == nil {
			continue
		}
		start := m.Fset.Position(fi.decl.Pos())
		end := m.Fset.Position(fi.decl.Body.End())
		spans = append(spans, hotSpan{
			file: start.Filename,
			from: start.Line,
			to:   end.Line,
			name: obj.Name(),
		})
		if strings.TrimSpace(d.raw) == "" {
			out = append(out, Finding{
				Analyzer: "hotalloc",
				Pos:      m.Fset.Position(fi.decl.Name.Pos()),
				Message:  fmt.Sprintf("hotpath annotation on %s carries no reason; say which per-op path makes it hot", obj.Name()),
			})
		}
	}
	if len(spans) == 0 {
		return out
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].file != spans[j].file {
			return spans[i].file < spans[j].file
		}
		return spans[i].from < spans[j].from
	})

	diags, err := escapeDiagnostics(m.Root)
	if err != nil {
		out = append(out, Finding{
			Analyzer: "hotalloc",
			Pos:      token.Position{Filename: filepath.Join(m.Root, "go.mod"), Line: 1, Column: 1},
			Message:  fmt.Sprintf("escape analysis unavailable: %v", err),
		})
		return out
	}

	for _, d := range diags {
		for i := range spans {
			s := &spans[i]
			if d.file == s.file && d.line >= s.from && d.line <= s.to {
				out = append(out, Finding{
					Analyzer: "hotalloc",
					Pos:      token.Position{Filename: d.file, Line: d.line, Column: d.col},
					Message:  fmt.Sprintf("hotpath function %s allocates: %s", s.name, d.msg),
				})
				break
			}
		}
	}
	return out
}

// escapeDiag is one allocation verdict from the compiler.
type escapeDiag struct {
	file      string
	line, col int
	msg       string
}

// escapeDiagnostics runs `go build -gcflags=-m ./...` in root and returns
// the allocation diagnostics with absolute file paths. The go toolchain
// replays cached -m output, so repeat runs are cheap and deterministic.
func escapeDiagnostics(root string) ([]escapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	b, err := cmd.CombinedOutput()
	if err != nil {
		// -m output goes to stderr even on success; a non-nil err means the
		// build itself failed.
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, trimOutput(string(b)))
	}
	var out []escapeDiag
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasSuffix(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		out = append(out, escapeDiag{file: file, line: ln, col: col, msg: strings.TrimSpace(parts[3])})
	}
	return out, nil
}

func trimOutput(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	keep := lines[:0]
	for _, l := range lines {
		// Keep only error lines, not the -m diagnostic flood.
		if strings.Contains(l, "escapes to heap") || strings.Contains(l, "moved to heap") ||
			strings.Contains(l, "can inline") || strings.Contains(l, "inlining call") ||
			strings.Contains(l, "leaking param") || strings.Contains(l, "does not escape") {
			continue
		}
		keep = append(keep, l)
		if len(keep) >= 20 {
			break
		}
	}
	return strings.Join(keep, "\n")
}
