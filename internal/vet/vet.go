// Package vet is ermia-vet's engine: a from-scratch, stdlib-only static
// analysis driver (go/parser, go/ast, go/types, go/importer — no x/tools)
// plus five repo-specific analyzers enforcing the invariants the Go compiler
// cannot see:
//
//   - atomicmix: a struct field accessed both through sync/atomic and by
//     plain load/store is a torn-read data race waiting for the right
//     interleaving.
//   - epochguard: functions that dereference latch-free version chains
//     (//ermia:guarded) may only be called from other guarded functions or
//     from audited guard boundaries (//ermia:guard-entry), proving chain
//     walks stay under an epoch guard.
//   - errclass: every exported sentinel error is classified by the retry
//     taxonomy and round-trips through the wire-status bijection; switches
//     over //ermia:exhaustive enum types must cover every constant.
//   - lockorder: the static mutex acquisition-order graph must be acyclic.
//   - nodeterminism: files marked //ermia:deterministic (crash-sweep and
//     replay infrastructure) must not read clocks, use math/rand, or
//     iterate maps in unspecified order.
//
// Findings are suppressed, one site at a time, with a justified
// "//ermia:allow <analyzer> <reason>" comment on (or immediately above) the
// offending line.
package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Analyzer is one registered pass. Analyzers see the whole module at once:
// several invariants (mixed field access, lock order, the status bijection)
// only exist across package boundaries.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// Analyzers returns the full registered suite, in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		EpochGuard,
		ErrClass,
		LockOrder,
		NoDeterminism,
	}
}

// ByName returns the named subset of the suite, preserving suite order.
func ByName(names []string) ([]*Analyzer, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("vet: unknown analyzer %q", n)
	}
	return out, nil
}

// Run executes the analyzers over the module and returns the surviving
// findings: deterministic order, //ermia:allow suppressions applied.
func Run(m *Module, analyzers []*Analyzer) []Finding {
	allows := collectAllows(m)
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(m) {
			if allows.allowed(a.Name, f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// allowSet records //ermia:allow directives: analyzer name -> file -> lines
// the suppression covers.
type allowSet map[string]map[string]map[int]bool

func (s allowSet) add(analyzer, file string, line int) {
	byFile := s[analyzer]
	if byFile == nil {
		byFile = make(map[string]map[int]bool)
		s[analyzer] = byFile
	}
	lines := byFile[file]
	if lines == nil {
		lines = make(map[int]bool)
		byFile[file] = lines
	}
	// A directive covers its own line (trailing comment) and the next line
	// (comment on the line above the flagged statement).
	lines[line] = true
	lines[line+1] = true
}

func (s allowSet) allowed(analyzer string, pos token.Position) bool {
	return s[analyzer][pos.Filename][pos.Line]
}

func collectAllows(m *Module) allowSet {
	s := make(allowSet)
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c.Text)
					if !ok || d.verb != "allow" || len(d.args) == 0 {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					s.add(d.args[0], pos.Filename, pos.Line)
				}
			}
		}
	}
	return s
}

// RelFindings rewrites finding file names relative to root with forward
// slashes, for stable output across machines.
func RelFindings(root string, fs []Finding) []Finding {
	out := make([]Finding, len(fs))
	for i, f := range fs {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = filepath.ToSlash(rel)
		}
		out[i] = f
	}
	return out
}

// Text renders findings one per line: file:line:col: analyzer: message.
func Text(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return b.String()
}

// jsonFinding is the machine-readable schema: stable field names for CI
// annotations and future tooling.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// JSON renders findings as an indented JSON array (always an array, never
// null, so consumers can range without nil checks).
func JSON(fs []Finding) ([]byte, error) {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      col(f.Pos),
			Message:  f.Message,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// col guards against zero columns from synthesized positions.
func col(p token.Position) int {
	if p.Column < 1 {
		return 1
	}
	return p.Column
}
