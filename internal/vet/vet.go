// Package vet is ermia-vet's engine: a from-scratch, stdlib-only static
// analysis driver (go/parser, go/ast, go/types, go/importer — no x/tools)
// plus nine repo-specific analyzers enforcing the invariants the Go
// compiler cannot see:
//
//   - atomicmix: a struct field accessed both through sync/atomic and by
//     plain load/store is a torn-read data race waiting for the right
//     interleaving.
//   - cancelpoll: every loop in //ermia:cancellable code must provably
//     poll a cancellation signal (a channel, a context, or an audited
//     //ermia:cancelpoint) on every iteration, so drains and deadlines
//     cannot strand a goroutine.
//   - epochguard: functions that dereference latch-free version chains
//     (//ermia:guarded) may only be called from other guarded functions or
//     from audited guard boundaries (//ermia:guard-entry), proving chain
//     walks stay under an epoch guard.
//   - errclass: every exported sentinel error is classified by the retry
//     taxonomy and round-trips through the wire-status bijection; switches
//     over //ermia:exhaustive enum types must cover every constant.
//   - hotalloc: //ermia:hotpath functions must have zero heap escapes per
//     the real compiler's escape analysis (go build -gcflags=-m).
//   - lockorder: the static mutex acquisition-order graph must be acyclic.
//   - nodeterminism: files marked //ermia:deterministic (crash-sweep,
//     replay, and fault-injection infrastructure) must not read clocks,
//     use math/rand, or iterate maps in unspecified order.
//   - txnlifecycle: every engine.Txn produced by a Begin* call reaches
//     exactly one Commit or Abort on every path — no leaks, no
//     use-after-finish, no double-finish — with interprocedural summaries
//     for helpers and //ermia:txn-owner audits for handles whose ownership
//     escapes the function.
//   - wirecompat: the wire registry (Msg* and Status constants in
//     internal/proto) is append-only against the committed wire.golden
//     snapshot; renumbering, reuse, or removal of a committed value is a
//     protocol break.
//
// Findings are suppressed, one site at a time, with a justified
// "//ermia:allow <analyzer> <reason>" comment on (or immediately above) the
// offending line. The driver validates the directives themselves — unknown
// verbs, malformed allows, and allows that no longer suppress anything are
// findings too (pseudo-analyzer "directives").
package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Analyzer is one registered pass. Analyzers see the whole module at once:
// several invariants (mixed field access, lock order, the status bijection)
// only exist across package boundaries.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// Analyzers returns the full registered suite, in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		CancelPoll,
		EpochGuard,
		ErrClass,
		HotAlloc,
		LockOrder,
		NoDeterminism,
		TxnLifecycle,
		WireCompat,
	}
}

// ByName returns the named subset of the suite, preserving suite order.
func ByName(names []string) ([]*Analyzer, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("vet: unknown analyzer %q", n)
	}
	return out, nil
}

// Run executes the analyzers over the module and returns the surviving
// findings: deterministic order, //ermia:allow suppressions applied, plus
// the driver's own directive diagnostics (unknown verbs, malformed or
// unjustified allows, and stale suppressions — an allow whose analyzer ran
// and reported nothing on the covered lines is dead weight that would
// silently mask a future regression). Driver diagnostics carry the
// pseudo-analyzer name "directives".
func Run(m *Module, analyzers []*Analyzer) []Finding {
	allows, dirFindings := collectDirectives(m)
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(m) {
			if allows.allowed(a.Name, f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	inRun := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		inRun[a.Name] = true
	}
	for _, e := range allows.entries {
		if !e.used && inRun[e.analyzer] {
			dirFindings = append(dirFindings, Finding{
				Analyzer: "directives",
				Pos:      e.pos,
				Message:  fmt.Sprintf("//ermia:allow %s suppresses nothing; delete the stale suppression", e.analyzer),
			})
		}
	}
	for _, f := range dirFindings {
		if allows.allowed("directives", f.Pos) {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// knownVerbs is every directive the suite understands; anything else after
// "//ermia:" is a typo that would otherwise rot silently (an annotation
// that suppresses or asserts nothing).
var knownVerbs = map[string]bool{
	"allow":         true,
	"cancellable":   true,
	"cancelpoint":   true,
	"classify":      true,
	"deterministic": true,
	"exhaustive":    true,
	"guard-entry":   true,
	"guarded":       true,
	"hotpath":       true,
	"status":        true,
	"txn-owner":     true,
}

// allowEntry is one //ermia:allow directive, tracking whether it actually
// suppressed a finding this run.
type allowEntry struct {
	analyzer string
	pos      token.Position
	used     bool
}

// allowSet indexes allow directives: analyzer name -> file -> covered line.
type allowSet struct {
	byLine  map[string]map[string]map[int]*allowEntry
	entries []*allowEntry
}

func (s *allowSet) add(e *allowEntry) {
	byFile := s.byLine[e.analyzer]
	if byFile == nil {
		byFile = make(map[string]map[int]*allowEntry)
		s.byLine[e.analyzer] = byFile
	}
	lines := byFile[e.pos.Filename]
	if lines == nil {
		lines = make(map[int]*allowEntry)
		byFile[e.pos.Filename] = lines
	}
	// A directive covers its own line (trailing comment) and the next line
	// (comment on the line above the flagged statement).
	lines[e.pos.Line] = e
	lines[e.pos.Line+1] = e
	s.entries = append(s.entries, e)
}

func (s *allowSet) allowed(analyzer string, pos token.Position) bool {
	e := s.byLine[analyzer][pos.Filename][pos.Line]
	if e == nil {
		return false
	}
	e.used = true
	return true
}

// collectDirectives gathers the allow suppressions and validates every
// directive in the module: unknown verbs, allows that name no (or an
// unknown) analyzer, and allows without a justification are findings.
func collectDirectives(m *Module) (*allowSet, []Finding) {
	validNames := map[string]bool{"directives": true}
	for _, a := range Analyzers() {
		validNames[a.Name] = true
	}
	s := &allowSet{byLine: make(map[string]map[string]map[int]*allowEntry)}
	var findings []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseDirective(c.Text)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					if !knownVerbs[d.verb] {
						findings = append(findings, Finding{
							Analyzer: "directives",
							Pos:      pos,
							Message:  fmt.Sprintf("unknown directive //ermia:%s; the suite understands none of its arguments", d.verb),
						})
						continue
					}
					if d.verb != "allow" {
						continue
					}
					if len(d.args) == 0 {
						findings = append(findings, Finding{
							Analyzer: "directives",
							Pos:      pos,
							Message:  "//ermia:allow names no analyzer; write //ermia:allow <analyzer> <reason>",
						})
						continue
					}
					if !validNames[d.args[0]] {
						findings = append(findings, Finding{
							Analyzer: "directives",
							Pos:      pos,
							Message:  fmt.Sprintf("//ermia:allow names unknown analyzer %q; it suppresses nothing", d.args[0]),
						})
						continue
					}
					if len(d.args) < 2 {
						findings = append(findings, Finding{
							Analyzer: "directives",
							Pos:      pos,
							Message:  fmt.Sprintf("//ermia:allow %s carries no reason; every suppression must say why", d.args[0]),
						})
						// Still honor it: an unjustified allow is a finding,
						// not a re-opened one.
					}
					s.add(&allowEntry{analyzer: d.args[0], pos: pos})
				}
			}
		}
	}
	return s, findings
}

// RelFindings rewrites finding file names relative to root with forward
// slashes, for stable output across machines.
func RelFindings(root string, fs []Finding) []Finding {
	out := make([]Finding, len(fs))
	for i, f := range fs {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = filepath.ToSlash(rel)
		}
		out[i] = f
	}
	return out
}

// Text renders findings one per line: file:line:col: analyzer: message.
func Text(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return b.String()
}

// jsonFinding is the machine-readable schema: stable field names for CI
// annotations and future tooling.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// JSON renders findings as an indented JSON array (always an array, never
// null, so consumers can range without nil checks).
func JSON(fs []Finding) ([]byte, error) {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      col(f.Pos),
			Message:  f.Message,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// col guards against zero columns from synthesized positions.
func col(p token.Position) int {
	if p.Column < 1 {
		return 1
	}
	return p.Column
}
