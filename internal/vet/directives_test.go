package vet

import (
	"strings"
	"testing"
)

// TestParseDirective pins the comment convention: go:build style, no space
// after "//", so ordinary prose never parses as a directive.
func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		ok   bool
		verb string
		args []string
		raw  string
	}{
		{"//ermia:allow lockorder commit path is lock-free", true, "allow", []string{"lockorder", "commit", "path", "is", "lock-free"}, "lockorder commit path is lock-free"},
		{"//ermia:hotpath", true, "hotpath", nil, ""},
		{"//ermia:", false, "", nil, ""},
		{"// ermia:allow lockorder spaced comments are prose", false, "", nil, ""},
		{"// The //ermia:hotpath helpers are gated elsewhere", false, "", nil, ""},
		{"//go:build race", false, "", nil, ""},
	}
	for _, c := range cases {
		d, ok := parseDirective(c.text)
		if ok != c.ok {
			t.Errorf("parseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.verb != c.verb || d.raw != c.raw || len(d.args) != len(c.args) {
			t.Errorf("parseDirective(%q) = %+v, want verb %q args %v raw %q", c.text, d, c.verb, c.args, c.raw)
			continue
		}
		for i := range c.args {
			if d.args[i] != c.args[i] {
				t.Errorf("parseDirective(%q) arg[%d] = %q, want %q", c.text, i, d.args[i], c.args[i])
			}
		}
	}
}

// TestDirectiveValidation runs the driver over the directives fixture and
// checks every malformation is reported exactly once, while the two
// well-aimed allows still suppress their findings.
func TestDirectiveValidation(t *testing.T) {
	m := loadFixture(t, "directives")
	findings := Run(m, []*Analyzer{NoDeterminism})

	wantSubstrings := []string{
		`unknown directive //ermia:frobnicate`,
		`//ermia:allow nodeterminism carries no reason`,
		`//ermia:allow nodeterminism suppresses nothing`,
		`//ermia:allow names unknown analyzer "nosuchanalyzer"`,
		`//ermia:allow names no analyzer`,
	}
	for _, want := range wantSubstrings {
		n := 0
		for _, f := range findings {
			if f.Analyzer == "directives" && strings.Contains(f.Message, want) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("want exactly 1 finding containing %q, got %d\nall findings:\n%s", want, n, Text(findings))
		}
	}
	for _, f := range findings {
		if f.Analyzer == "nodeterminism" {
			t.Errorf("allowed finding leaked through: %s", f.Message)
		}
	}
	if want, got := len(wantSubstrings), len(findings); want != got {
		t.Errorf("want %d findings total, got %d:\n%s", want, got, Text(findings))
	}
}

// TestStaleAllowScopedToRunSet: an allow is only stale when its analyzer
// actually ran — `-run` subset invocations must not condemn suppressions
// they never exercised.
func TestStaleAllowScopedToRunSet(t *testing.T) {
	m := loadFixture(t, "directives")
	findings := Run(m, []*Analyzer{LockOrder})
	for _, f := range findings {
		if strings.Contains(f.Message, "delete the stale suppression") {
			t.Errorf("stale-allow finding for an analyzer outside the run set: %s", f.Message)
		}
	}
	// The syntax-level diagnostics still fire regardless of the run set.
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "unknown directive //ermia:frobnicate") {
			found = true
		}
	}
	if !found {
		t.Error("syntax-level directive diagnostics must not depend on the run set")
	}
}
