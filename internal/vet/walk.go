package vet

import (
	"go/ast"
	"go/types"
)

// funcInfo pairs a declared function with its package and type object.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
}

// moduleFuncs returns every declared function/method in the module, keyed by
// its type object.
func moduleFuncs(m *Module) map[*types.Func]*funcInfo {
	out := make(map[*types.Func]*funcInfo)
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				out[obj] = &funcInfo{pkg: p, decl: fd, obj: obj}
			}
		}
	}
	return out
}

// calleeOf resolves a call expression to the static *types.Func it invokes:
// direct calls, method calls on concrete receivers, and calls through
// function-valued selectors that the type-checker resolved. Interface-method
// and function-variable calls return nil (dynamic dispatch).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if _, isInterface := sel.Recv().Underlying().(*types.Interface); isInterface {
					return nil
				}
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Fn).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// eachFuncBody invokes fn once per declared function body in the package,
// plus once with decl == nil covering every package-level variable
// initializer (where code can also run).
func eachFuncBody(p *Package, fn func(decl *ast.FuncDecl, body ast.Node)) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, d.Body)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							fn(nil, v)
						}
					}
				}
			}
		}
	}
}

// pkgPathIs reports whether pkg (possibly nil) has the given import path.
func pkgPathIs(pkg *types.Package, path string) bool {
	return pkg != nil && pkg.Path() == path
}
