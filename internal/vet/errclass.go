package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrClass enforces the error-taxonomy invariants added in the fault
// containment and network PRs:
//
//  1. Classification: every exported sentinel error ("var ErrX = ...") in
//     internal/engine, internal/core, and internal/wal must be classified
//     on purpose — referenced from the body of engine.IsRetryable or
//     engine.Classify, or annotated "//ermia:classify fatal" to document
//     that falling through to Classify's OutcomeFatal default arm is
//     intentional, not an omission.
//  2. Wire bijection: every sentinel in internal/engine and internal/proto
//     must appear in proto's statusTable (the single table both directions
//     of the status<->error mapping walk), or be annotated
//     "//ermia:classify local" to document that it never crosses the wire
//     (client-side synthesized errors, retry-loop wrappers).
//  3. Table audit: statusTable must be a bijection — no status code and no
//     sentinel may appear in two rows.
//  4. Status coverage: every constant of proto's Status type must appear in
//     statusTable or be annotated "//ermia:status special" (StatusOK and
//     StatusInternal, which the mapping functions handle out of line).
//  5. Exhaustiveness: a switch whose tag has a type annotated
//     "//ermia:exhaustive" and no default clause must list every declared
//     constant of that type.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc:  "sentinel errors must be classified, wire-mapped, and switched exhaustively",
	Run:  runErrClass,
}

// sentinel is one exported Err* package-level variable.
type sentinel struct {
	pkg  *Package
	obj  *types.Var
	spec *ast.ValueSpec
	doc  *ast.CommentGroup
}

func runErrClass(m *Module) []Finding {
	var out []Finding

	engPkg := m.LookupSuffix("internal/engine")
	protoPkg := m.LookupSuffix("internal/proto")

	sentinels := collectSentinels(m, []string{"internal/engine", "internal/core", "internal/wal", "internal/proto"})

	// References inside the classifier functions.
	classified := make(map[types.Object]bool)
	if engPkg != nil {
		for _, name := range []string{"IsRetryable", "Classify"} {
			markUses(engPkg, name, classified)
		}
	}

	// References inside proto's statusTable composite literal, plus the
	// statuses used there.
	tableErrs := make(map[types.Object]bool)
	tableStatuses := make(map[types.Object][]token.Position)
	var statusType types.Type
	if protoPkg != nil {
		statusType = namedType(protoPkg, "Status")
		collectStatusTable(m, protoPkg, tableErrs, tableStatuses, &out)
	}

	for _, s := range sentinels {
		suffix := pathSuffix(s.pkg.Path)
		d, _ := hasDirective(s.doc, "classify")
		tokens := make(map[string]bool)
		for _, a := range d.args {
			tokens[a] = true
		}

		// Rule 1: classification (engine, core, wal).
		if suffix != "internal/proto" && engPkg != nil {
			if !classified[s.obj] && !tokens["fatal"] {
				out = append(out, Finding{
					Analyzer: "errclass",
					Pos:      m.Fset.Position(s.obj.Pos()),
					Message: fmt.Sprintf("sentinel %s is not referenced by engine.IsRetryable or engine.Classify; classify it there or annotate the declaration //ermia:classify fatal <reason>",
						s.obj.Name()),
				})
			}
		}

		// Rule 2: wire bijection (engine, proto).
		if (suffix == "internal/engine" || suffix == "internal/proto") && protoPkg != nil {
			if !tableErrs[s.obj] && !tokens["local"] {
				out = append(out, Finding{
					Analyzer: "errclass",
					Pos:      m.Fset.Position(s.obj.Pos()),
					Message: fmt.Sprintf("sentinel %s has no proto status: add a statusTable row or annotate the declaration //ermia:classify local <reason>",
						s.obj.Name()),
				})
			}
		}
	}

	// Rule 4: status constants must be mapped or marked special.
	if protoPkg != nil && statusType != nil {
		for _, c := range constantsOf(protoPkg, statusType) {
			if len(tableStatuses[c.obj]) > 0 {
				continue
			}
			if d, ok := hasDirective(c.doc, "status"); ok && len(d.args) > 0 && d.args[0] == "special" {
				continue
			}
			out = append(out, Finding{
				Analyzer: "errclass",
				Pos:      m.Fset.Position(c.obj.Pos()),
				Message: fmt.Sprintf("status constant %s appears in no statusTable row; map it to a sentinel or annotate it //ermia:status special",
					c.obj.Name()),
			})
		}
	}

	// Rule 5: switch exhaustiveness over //ermia:exhaustive types.
	out = append(out, checkExhaustiveSwitches(m)...)
	return out
}

func pathSuffix(path string) string {
	if i := strings.Index(path, "internal/"); i >= 0 {
		return path[i:]
	}
	return path
}

func collectSentinels(m *Module, suffixes []string) []sentinel {
	var out []sentinel
	for _, suffix := range suffixes {
		p := m.LookupSuffix(suffix)
		if p == nil {
			continue
		}
		for _, file := range p.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					doc := vs.Doc
					if doc == nil {
						doc = gd.Doc
					}
					for _, name := range vs.Names {
						obj, _ := p.Info.Defs[name].(*types.Var)
						if obj == nil || !obj.Exported() || !strings.HasPrefix(obj.Name(), "Err") {
							continue
						}
						if !types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
							continue
						}
						out = append(out, sentinel{pkg: p, obj: obj, spec: vs, doc: doc})
					}
				}
			}
		}
	}
	return out
}

// markUses records every object referenced inside the body of the named
// top-level function.
func markUses(p *Package, fname string, into map[types.Object]bool) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fname || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						into[obj] = true
					}
				}
				return true
			})
		}
	}
}

// collectStatusTable walks the composite literal initializing proto's
// statusTable var, recording which sentinels and which status constants
// appear, and reporting duplicate rows (rule 3).
func collectStatusTable(m *Module, p *Package, errs map[types.Object]bool, statuses map[types.Object][]token.Position, out *[]Finding) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "statusTable" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				seenErr := make(map[types.Object]token.Position)
				for _, elt := range lit.Elts {
					row, ok := elt.(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, field := range row.Elts {
						expr := field
						if kv, ok := field.(*ast.KeyValueExpr); ok {
							expr = kv.Value
						}
						obj := exprObject(p, expr)
						if obj == nil {
							continue
						}
						pos := m.Fset.Position(expr.Pos())
						switch o := obj.(type) {
						case *types.Const:
							if prev := statuses[o]; len(prev) > 0 {
								*out = append(*out, Finding{
									Analyzer: "errclass",
									Pos:      pos,
									Message:  fmt.Sprintf("statusTable is not a bijection: status %s already mapped at %s", o.Name(), shortPos(m, prev[0])),
								})
							}
							statuses[o] = append(statuses[o], pos)
						case *types.Var:
							if prev, dup := seenErr[o]; dup {
								*out = append(*out, Finding{
									Analyzer: "errclass",
									Pos:      pos,
									Message:  fmt.Sprintf("statusTable is not a bijection: sentinel %s already mapped at %s", o.Name(), shortPos(m, prev)),
								})
							} else {
								seenErr[o] = pos
							}
							errs[o] = true
						}
					}
				}
			}
		}
	}
}

// exprObject resolves an identifier or package-qualified selector to its
// object.
func exprObject(p *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

type constInfo struct {
	obj *types.Const
	doc *ast.CommentGroup
}

// namedType returns the named type declared in p, or nil.
func namedType(p *Package, name string) types.Type {
	if o := p.Types.Scope().Lookup(name); o != nil {
		if tn, ok := o.(*types.TypeName); ok {
			return tn.Type()
		}
	}
	return nil
}

// constantsOf returns the package-level constants of exactly type t, with
// their doc comments.
func constantsOf(p *Package, t types.Type) []constInfo {
	var out []constInfo
	for _, file := range p.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				doc := vs.Doc
				if doc == nil {
					doc = gd.Doc
				}
				for _, name := range vs.Names {
					c, _ := p.Info.Defs[name].(*types.Const)
					if c != nil && types.Identical(c.Type(), t) {
						out = append(out, constInfo{obj: c, doc: doc})
					}
				}
			}
		}
	}
	return out
}

// checkExhaustiveSwitches enforces rule 5 module-wide.
func checkExhaustiveSwitches(m *Module) []Finding {
	// Exhaustive-marked named types, resolved to their declaring package.
	exhaustive := make(map[*types.TypeName]*Package)
	for _, p := range m.Pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					if _, ok := hasDirective(doc, "exhaustive"); !ok {
						continue
					}
					if tn, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
						exhaustive[tn] = p
					}
				}
			}
		}
	}
	if len(exhaustive) == 0 {
		return nil
	}

	var out []Finding
	for _, p := range m.Pkgs {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := p.Info.Types[sw.Tag]
				if !ok {
					return true
				}
				named, ok := tv.Type.(*types.Named)
				if !ok {
					return true
				}
				declPkg, marked := exhaustive[named.Obj()]
				if !marked {
					return true
				}
				covered := make(map[types.Object]bool)
				hasDefault := false
				for _, stmt := range sw.Body.List {
					cc := stmt.(*ast.CaseClause)
					if cc.List == nil {
						hasDefault = true
						continue
					}
					for _, e := range cc.List {
						if obj := exprObject(p, e); obj != nil {
							covered[obj] = true
						}
					}
				}
				if hasDefault {
					return true
				}
				var missing []string
				for _, c := range constantsOf(declPkg, named) {
					if !covered[c.obj] {
						missing = append(missing, c.obj.Name())
					}
				}
				if len(missing) > 0 {
					out = append(out, Finding{
						Analyzer: "errclass",
						Pos:      m.Fset.Position(sw.Pos()),
						Message: fmt.Sprintf("switch over exhaustive type %s misses %s and has no default",
							named.Obj().Name(), strings.Join(missing, ", ")),
					})
				}
				return true
			})
		}
	}
	return out
}
