package vet

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// want is one expectation comment: `// want ` followed by a backquoted
// regexp, placed on the line the finding must land on.
type want struct {
	file string // relative to the fixture root
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// loadFixture loads one testdata mini-module under the module path "fix".
// The fixtures mirror the real repo's path suffixes (internal/engine,
// internal/proto, ...) so the analyzers' suffix-keyed lookups resolve
// identically.
func loadFixture(t *testing.T, name string) *Module {
	t.Helper()
	m, err := Load(filepath.Join("testdata", name), "fix")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return m
}

// collectWants scans every fixture file for expectation comments.
func collectWants(t *testing.T, m *Module) []*want {
	t.Helper()
	var out []*want
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					match := wantRe.FindStringSubmatch(c.Text)
					if match == nil {
						continue
					}
					re, err := regexp.Compile(match[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", match[1], err)
					}
					pos := m.Fset.Position(c.Pos())
					rel, err := filepath.Rel(m.Root, pos.Filename)
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, &want{file: filepath.ToSlash(rel), line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// TestFixtures runs each analyzer over its fixture mini-module and diffs the
// findings against the `// want` expectations: every finding must be
// expected, every expectation must fire.
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			m := loadFixture(t, a.Name)
			findings := RelFindings(m.Root, Run(m, []*Analyzer{a}))
			wants := collectWants(t, m)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want comments", a.Name)
			}
			for _, f := range findings {
				matched := false
				for _, w := range wants {
					if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
						w.hit = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, f.Message)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("expected finding at %s:%d matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestAllowSuppression proves a finding vanishes when the flagged line gains
// a justified //ermia:allow: the nodeterminism fixture carries one allowed
// map range whose twin two lines up is flagged.
func TestAllowSuppression(t *testing.T) {
	m := loadFixture(t, "nodeterminism")
	findings := Run(m, []*Analyzer{NoDeterminism})
	mapFindings := 0
	for _, f := range findings {
		if strings.Contains(f.Message, "map iteration") {
			mapFindings++
		}
	}
	if mapFindings != 1 {
		t.Fatalf("want exactly 1 map-iteration finding (the unallowed range), got %d", mapFindings)
	}
}

// TestJSONGolden locks the machine-readable schema: stable field names,
// always an array, findings in deterministic order.
func TestJSONGolden(t *testing.T) {
	m := loadFixture(t, "nodeterminism")
	findings := RelFindings(m.Root, Run(m, []*Analyzer{NoDeterminism}))
	got, err := JSON(findings)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden", "nodeterminism.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if string(got) != string(wantBytes) {
		t.Errorf("JSON output drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, wantBytes)
	}
}

// TestJSONEmpty: an empty finding set must encode as [], not null.
func TestJSONEmpty(t *testing.T) {
	b, err := JSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(b)) != "[]" {
		t.Errorf("empty findings must encode as [], got %q", b)
	}
}

// TestByName covers subset selection and the unknown-analyzer error.
func TestByName(t *testing.T) {
	as, err := ByName([]string{"lockorder", "atomicmix"})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "atomicmix" || as[1].Name != "lockorder" {
		t.Errorf("ByName returned wrong subset: %v", names(as))
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Error("ByName must reject unknown analyzer names")
	}
}

func names(as []*Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestTextFormat locks the human-readable line format.
func TestTextFormat(t *testing.T) {
	m := loadFixture(t, "lockorder")
	findings := RelFindings(m.Root, Run(m, []*Analyzer{LockOrder}))
	text := Text(findings)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if !regexp.MustCompile(`^[^:]+:\d+:\d+: lockorder: `).MatchString(line) {
			t.Errorf("malformed text line: %q", line)
		}
	}
}

// TestRepoClean is the self-gate: the full suite over the real module must
// report nothing. Every invariant the analyzers enforce is part of the
// repo's tier-1 contract, and the annotations in the tree are the audit
// trail. Skipped in -short mode: the race-detector pass re-runs packages
// with -short and does not need to pay for a second whole-module load.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis skipped in -short mode")
	}
	m, err := LoadModule(".")
	if err != nil {
		t.Fatalf("load repo module: %v", err)
	}
	findings := RelFindings(m.Root, Run(m, Analyzers()))
	for _, f := range findings {
		t.Errorf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		t.Error("the tree must be vet-clean; fix the findings or add justified //ermia:allow annotations")
	}
}

// TestLoaderSuffixLookup pins the suffix-keyed package resolution the
// analyzers rely on to work against both real and fixture layouts.
func TestLoaderSuffixLookup(t *testing.T) {
	m := loadFixture(t, "errclass")
	if p := m.LookupSuffix("internal/engine"); p == nil || p.Path != "fix/internal/engine" {
		t.Fatalf("LookupSuffix(internal/engine) = %v", p)
	}
	if p := m.Lookup("fix/internal/proto"); p == nil {
		t.Fatal("Lookup by full path failed")
	}
	if p := m.LookupSuffix("no/such/pkg"); p != nil {
		t.Fatalf("LookupSuffix of absent package = %v", p.Path)
	}
}
