package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a static acquisition-order graph over the module's named
// mutexes and reports cycles. A mutex is "named" by its declaration site: a
// struct field of type sync.Mutex/sync.RWMutex ("wal.Manager.segMu") or a
// package-level mutex variable. An edge A -> B is recorded when a function
// acquires B while (textually) holding A, either directly or through a
// callee that may acquire B (computed as a transitive lock summary over the
// intra-module call graph). Any cycle among distinct mutex classes is a
// potential deadlock: two goroutines taking the two locks in opposite
// orders need only the right interleaving.
//
// Self-edges through callees are ignored — "holding a.mu, call a helper
// that locks b.mu" where both are the same field of different instances is
// indistinguishable statically — but a direct re-acquisition of the same
// expression path (m.mu.Lock() twice without an unlock) is reported: Go
// mutexes are not reentrant.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report cycles in the static mutex acquisition-order graph",
	Run:  runLockOrder,
}

// lockEvent is one Lock/Unlock call inside a function body, in source
// order.
type lockEvent struct {
	key      string // mutex class, e.g. "wal.Manager.segMu"
	path     string // receiver expression text, e.g. "m.segMu"
	acquire  bool
	deferred bool
	pos      token.Pos
}

// lockEdge is one acquisition-order edge with a witness position.
type lockEdge struct {
	from, to string
	pos      token.Position
	via      string // callee name for summary edges, "" for direct
}

func runLockOrder(m *Module) []Finding {
	funcs := moduleFuncs(m)

	// Per-function lock events and direct callee lists.
	events := make(map[*types.Func][]lockEvent)
	callees := make(map[*types.Func][]*types.Func)
	callPos := make(map[*types.Func]map[*types.Func]token.Pos)
	for obj, fi := range funcs {
		if fi.decl.Body == nil {
			continue
		}
		var evs []lockEvent
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if ev, ok := lockEventOf(fi.pkg, n.Call); ok {
					ev.deferred = true
					evs = append(evs, ev)
					return false
				}
			case *ast.CallExpr:
				if ev, ok := lockEventOf(fi.pkg, n); ok {
					evs = append(evs, ev)
					return true
				}
				if callee := calleeOf(fi.pkg.Info, n); callee != nil {
					if _, inModule := funcs[callee]; inModule {
						callees[obj] = append(callees[obj], callee)
						if callPos[obj] == nil {
							callPos[obj] = make(map[*types.Func]token.Pos)
						}
						if _, ok := callPos[obj][callee]; !ok {
							callPos[obj][callee] = n.Pos()
						}
						evs = append(evs, lockEvent{key: "", pos: n.Pos(), path: calleeKey(callee)})
					}
				}
			}
			return true
		})
		events[obj] = evs
	}

	// Transitive lock summaries: every mutex class a function may acquire,
	// itself or through module-internal callees. Fixpoint handles recursion.
	summary := make(map[*types.Func]map[string]bool)
	for obj := range events {
		summary[obj] = make(map[string]bool)
		for _, ev := range events[obj] {
			if ev.key != "" && ev.acquire {
				summary[obj][ev.key] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, cs := range callees {
			for _, c := range cs {
				for k := range summary[c] {
					if !summary[obj][k] {
						if summary[obj] == nil {
							summary[obj] = make(map[string]bool)
						}
						summary[obj][k] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge construction: linear walk per function maintaining the held set.
	var out []Finding
	edges := make(map[string]map[string]lockEdge)
	addEdge := func(from, to string, pos token.Position, via string) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[string]lockEdge)
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = lockEdge{from: from, to: to, pos: pos, via: via}
		}
	}

	var fnames []*types.Func
	for obj := range events {
		fnames = append(fnames, obj)
	}
	sort.Slice(fnames, func(i, j int) bool { return fnames[i].FullName() < fnames[j].FullName() })

	for _, obj := range fnames {
		held := make(map[string]int)     // class -> count
		heldPath := make(map[string]int) // exact expression path -> count
		calleeIdx := 0
		cs := callees[obj]
		for _, ev := range events[obj] {
			switch {
			case ev.key != "" && ev.acquire:
				pos := m.Fset.Position(ev.pos)
				if heldPath[ev.path+"\x00"+ev.key] > 0 {
					out = append(out, Finding{
						Analyzer: "lockorder",
						Pos:      pos,
						Message:  fmt.Sprintf("%s is re-locked while already held (mutexes are not reentrant)", ev.path),
					})
				}
				for k, n := range held {
					if n > 0 {
						addEdge(k, ev.key, pos, "")
					}
				}
				held[ev.key]++
				heldPath[ev.path+"\x00"+ev.key]++
			case ev.key != "" && !ev.acquire:
				if ev.deferred {
					continue // released at function end; stays held for the walk
				}
				if held[ev.key] > 0 {
					held[ev.key]--
				}
				if heldPath[ev.path+"\x00"+ev.key] > 0 {
					heldPath[ev.path+"\x00"+ev.key]--
				}
			case ev.key == "":
				// Call to a module-internal function: edges from every held
				// mutex to everything the callee may acquire.
				var callee *types.Func
				if calleeIdx < len(cs) {
					callee = cs[calleeIdx]
					calleeIdx++
				}
				if callee == nil {
					continue
				}
				anyHeld := false
				for _, n := range held {
					if n > 0 {
						anyHeld = true
						break
					}
				}
				if !anyHeld {
					continue
				}
				pos := m.Fset.Position(ev.pos)
				for k, n := range held {
					if n == 0 {
						continue
					}
					for target := range summary[callee] {
						addEdge(k, target, pos, callee.Name())
					}
				}
			}
		}
	}

	// Cycle detection over the class graph.
	out = append(out, reportLockCycles(edges)...)
	return out
}

func calleeKey(f *types.Func) string { return f.FullName() }

// lockEventOf recognizes Lock/RLock/Unlock/RUnlock calls on named mutexes
// and returns the event.
func lockEventOf(p *Package, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockEvent{}, false
	}
	// The method must belong to sync.Mutex/RWMutex.
	s, ok := p.Info.Selections[sel]
	if !ok {
		return lockEvent{}, false
	}
	mf, ok := s.Obj().(*types.Func)
	if !ok || !pkgPathIs(mf.Pkg(), "sync") {
		return lockEvent{}, false
	}
	key, ok := mutexKey(p, sel.X)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{key: key, path: exprText(sel.X), acquire: acquire, pos: call.Pos()}, true
}

// mutexKey names the mutex class a lock expression refers to: the declaring
// struct field ("pkg.Type.field") or package-level variable ("pkg.var").
// Anonymous or local mutexes return ok == false; they cannot participate in
// cross-function ordering by name.
func mutexKey(p *Package, x ast.Expr) (string, bool) {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		s, ok := p.Info.Selections[x]
		if ok && s.Kind() == types.FieldVal {
			field := s.Obj().(*types.Var)
			owner := ownerTypeName(s.Recv())
			if owner == "" || field.Pkg() == nil {
				return "", false
			}
			return field.Pkg().Name() + "." + owner + "." + field.Name(), true
		}
		// Package-qualified variable (pkg.mu).
		if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
	}
	return "", false
}

// ownerTypeName unwraps pointers to find the named struct type holding a
// field.
func ownerTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// exprText renders a lock receiver expression compactly for messages.
func exprText(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	default:
		return "?"
	}
}

// reportLockCycles finds strongly connected components with more than one
// node and renders each once, deterministically.
func reportLockCycles(edges map[string]map[string]lockEdge) []Finding {
	// Tarjan SCC, iterative enough for our graph sizes via recursion.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var comps [][]string

	var nodes []string
	nodeSet := make(map[string]bool)
	for from, tos := range edges {
		if !nodeSet[from] {
			nodeSet[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !nodeSet[to] {
				nodeSet[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var tos []string
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				comps = append(comps, comp)
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}

	var out []Finding
	for _, comp := range comps {
		sort.Strings(comp)
		// Witness edges inside the component, for the message.
		var wit []string
		var pos token.Position
		inComp := make(map[string]bool)
		for _, n := range comp {
			inComp[n] = true
		}
		for _, from := range comp {
			var tos []string
			for to := range edges[from] {
				tos = append(tos, to)
			}
			sort.Strings(tos)
			for _, to := range tos {
				if !inComp[to] {
					continue
				}
				e := edges[from][to]
				if pos.Filename == "" {
					pos = e.pos
				}
				detail := ""
				if e.via != "" {
					detail = " (via " + e.via + ")"
				}
				wit = append(wit, fmt.Sprintf("%s -> %s at %s:%d%s", from, to, pos1(e.pos), e.pos.Line, detail))
			}
		}
		out = append(out, Finding{
			Analyzer: "lockorder",
			Pos:      pos,
			Message: fmt.Sprintf("lock acquisition-order cycle among {%s}: %s",
				strings.Join(comp, ", "), strings.Join(wit, "; ")),
		})
	}
	return out
}

func pos1(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
