// Package flusher reproduces the PR-1 flusher error-propagation bug shape:
// the background flusher published its sticky device-error state with
// sync/atomic stores, while the foreground durability wait read the same
// field with a plain load. The torn protocol compiled, raced, and dropped
// the error on the floor. The analyzer must flag every plain access to a
// field that is touched atomically anywhere in the module.
package flusher

import "sync/atomic"

type manager struct {
	errState uint64
	closed   uint32
	// flushed uses the typed-atomic style the engine migrated to; the type
	// system forbids plain access, so the analyzer has nothing to say.
	flushed atomic.Uint64
}

func (m *manager) noteErr() {
	atomic.StoreUint64(&m.errState, 1)
}

func (m *manager) flushLoop() {
	for atomic.LoadUint32(&m.closed) == 0 {
		m.flushed.Add(1)
	}
}

func (m *manager) waitDurable() error {
	if m.errState != 0 { // want `plain access to field flusher\.errState, which is accessed atomically at`
		return nil
	}
	return nil
}

func (m *manager) close() {
	m.closed = 1 // want `plain access to field flusher\.closed, which is accessed atomically at`
}

func (m *manager) count() uint64 {
	return m.flushed.Load()
}
