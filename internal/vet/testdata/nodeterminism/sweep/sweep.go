// Package sweep stands in for the crash-sweep infrastructure: marked
// deterministic, so clocks, math/rand, and map iteration are forbidden.
//
//ermia:deterministic
package sweep

import (
	"math/rand" // want `deterministic file sweep\.go imports math/rand; use the seeded internal/xrand instead`
	"time"
)

func now() int64 {
	return time.Now().UnixNano() // want `time\.Now in deterministic file`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `time\.Since in deterministic file`
}

func sum(m map[string]int) int {
	n := 0
	for _, v := range m { // want `map iteration order is randomized per run`
		n += v
	}
	//ermia:allow nodeterminism order-insensitive sum, result identical any order
	for _, v := range m {
		n += v
	}
	return n
}

func roll() int { return rand.Int() }

var _ = now
var _ = age
var _ = sum
var _ = roll
