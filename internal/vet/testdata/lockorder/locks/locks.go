package locks

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var a A

var b B

// lockAB establishes the direct edge A -> B.
func lockAB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock acquisition-order cycle among \{locks\.A\.mu, locks\.B\.mu\}`
	b.mu.Unlock()
}

// lockBA establishes B -> A through a callee's lock summary, closing the
// cycle.
func lockBA() {
	b.mu.Lock()
	lockA()
	b.mu.Unlock()
}

func lockA() {
	a.mu.Lock()
	a.mu.Unlock()
}

func relock() {
	a.mu.Lock()
	a.mu.Lock() // want `a\.mu is re-locked while already held`
	a.mu.Unlock()
	a.mu.Unlock()
}

var _ = lockAB
var _ = lockBA
var _ = relock
