package proto

import (
	"errors"

	"fix/internal/engine"
)

// Status mirrors the real wire-status type.
//
//ermia:exhaustive
type Status uint16

const (
	// StatusOK is handled out of line by the mapping functions.
	//
	//ermia:status special success maps to nil
	StatusOK Status = iota
	StatusConflict
	StatusNoClass
	StatusExtra
	StatusLonely // want `status constant StatusLonely appears in no statusTable row`
)

// ErrLocal never crosses the wire and says so... except it does not.
var ErrLocal = errors.New("local") // want `sentinel ErrLocal has no proto status`

var statusTable = []struct {
	status Status
	err    error
}{
	{StatusConflict, engine.ErrConflict},
	{StatusNoClass, engine.ErrNoClass},
	{StatusConflict, engine.ErrFine},  // want `statusTable is not a bijection: status StatusConflict already mapped`
	{StatusExtra, engine.ErrConflict}, // want `statusTable is not a bijection: sentinel ErrConflict already mapped`
}

func describe(s Status) string {
	switch s { // want `switch over exhaustive type Status misses StatusLonely and has no default`
	case StatusOK:
		return "ok"
	case StatusConflict, StatusNoClass, StatusExtra:
		return "mapped"
	}
	return ""
}

func describeDefault(s Status) string {
	switch s { // ok: a default arm waives exhaustiveness
	case StatusOK:
		return "ok"
	default:
		return "other"
	}
}

var _ = statusTable
var _ = describe
var _ = describeDefault
