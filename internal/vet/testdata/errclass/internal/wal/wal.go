package wal

import "errors"

// ErrDevice is a wal sentinel with no classification at all.
var ErrDevice = errors.New("device failed") // want `sentinel ErrDevice is not referenced by engine\.IsRetryable or engine\.Classify`
