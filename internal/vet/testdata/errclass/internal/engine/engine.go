package engine

import "errors"

var (
	// ErrConflict is classified (IsRetryable) and wire-mapped (statusTable).
	ErrConflict = errors.New("conflict")

	// ErrNoWire is classified by annotation but missing from statusTable.
	//
	//ermia:classify fatal fixture: intentionally fatal
	ErrNoWire = errors.New("nowire") // want `sentinel ErrNoWire has no proto status`

	// ErrNoClass is wire-mapped but never classified.
	ErrNoClass = errors.New("noclass") // want `sentinel ErrNoClass is not referenced by engine\.IsRetryable or engine\.Classify`

	// ErrFine is annotated both ways: fatal by default, never on the wire.
	//
	//ermia:classify fatal local fixture: fully annotated
	ErrFine = errors.New("fine")
)

// IsRetryable is the classifier the analyzer scans for references.
func IsRetryable(err error) bool { return errors.Is(err, ErrConflict) }
