// Package sched exercises the driver's directive validation: unknown
// verbs, malformed allows, and stale suppressions.
//
//ermia:deterministic
package sched

import "time"

// frobnicate is not a directive the suite understands.
//
//ermia:frobnicate with great vigor
func now() int64 {
	//ermia:allow nodeterminism replay stamps use wall time only for operator-facing labels
	return time.Now().UnixNano() // suppressed, and the allow is live
}

func justified() int64 {
	//ermia:allow nodeterminism
	return time.Now().UnixNano() // suppressed, but the allow carries no reason
}

func pure(a, b int) int {
	//ermia:allow nodeterminism nothing here reads a clock, so this suppression is stale
	return a + b
}

func typos(a, b int) int {
	//ermia:allow nosuchanalyzer reasons do not save a bad analyzer name
	//ermia:allow
	return a * b
}

var _ = now
var _ = justified
var _ = pure
var _ = typos
