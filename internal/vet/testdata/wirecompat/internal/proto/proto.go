// Package proto reproduces the wire-registry bug shapes: the golden file
// next to this source freezes an older revision, and this revision has
// (a) a status inserted mid-iota — the real renumber hazard the live
// package's "appended ... to keep existing wire values stable" comments
// guard against by convention, (b) a brand-new unregistered status, (c) a
// message type reusing a retired value, and (d) two new messages
// colliding with each other.
package proto

// Status mirrors the real registry: iota-assigned, so mid-block edits
// shift everything below.
type Status uint16

const (
	StatusOK       Status = iota // want `golden entry status StatusGone \(wire value 5\) is no longer declared`
	StatusConflict
	StatusInserted   // want `takes wire value 2, which wire\.golden assigns to StatusOverloaded`
	StatusOverloaded // want `StatusOverloaded is renumbered: wire value 3 in code but 2 in wire\.golden`
	StatusNew        // want `StatusNew \(wire value 4\) is not in wire\.golden`
)

const (
	MsgBegin byte = iota + 1
	MsgCommit
	MsgReuse // want `MsgReuse reuses retired wire value 3 \(previously MsgOld\)`
)

const (
	MsgNewA byte = 9 // want `MsgNewA \(wire value 9\) is not in wire\.golden`
	MsgNewB byte = 9 // want `MsgNewB duplicates live wire value 9 already taken by MsgNewA`
)
