// Package epoch is the fixture's stand-in for the real epoch manager: the
// analyzer recognizes (Slot).Enter by method name and package path suffix.
package epoch

type Slot struct{ entered int }

func (s *Slot) Enter() { s.entered++ }

func (s *Slot) Exit() { s.entered-- }
