package core

import (
	"fix/internal/epoch"
	"fix/internal/mvcc"
)

var slot epoch.Slot

// entersDirectly is a proper guard boundary: the annotation is backed by a
// direct Enter call in the body.
//
//ermia:guard-entry
func entersDirectly(v *mvcc.Version) *mvcc.Version {
	slot.Enter()
	defer slot.Exit()
	return v.Next()
}

// auditedEntry carries an audit reason instead of a direct Enter call.
//
//ermia:guard-entry the caller's transaction entered the slot at begin
func auditedEntry(v *mvcc.Version) *mvcc.Version {
	return v.Next()
}

// badEntry has neither an Enter call nor a reason: an unaudited assertion.
//
//ermia:guard-entry
func badEntry(v *mvcc.Version) *mvcc.Version { // want `guard-entry function badEntry neither calls \(epoch\.Slot\)\.Enter nor gives an audit reason`
	return next2(v)
}

// next2 shows guarded-to-guarded calls are fine.
//
//ermia:guarded
func next2(w *mvcc.Version) *mvcc.Version { return w.Next() }

func unguarded(v *mvcc.Version) {
	_ = v.Next() // want `call to epoch-guarded function Next from unguarded function unguarded`
}

var hook = (*mvcc.Version).Next // want `reference to epoch-guarded function Next from package-level initializer`
