package mvcc

// Version is a latch-free chain node; dereferencing next is only safe under
// an epoch guard.
type Version struct{ next *Version }

// Next returns the next-older version.
//
//ermia:guarded
func (v *Version) Next() *Version { return v.next }
