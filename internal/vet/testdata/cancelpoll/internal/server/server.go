// Package server exercises cancelpoll: every accepted poll form, the
// bounded-loop exemptions, and the real bug shape — a session-style read
// loop whose frame read is not an audited cancel point, so nothing stops
// it at drain.
package server

import "context"

type conn struct{}

//ermia:cancelpoint returns an error once the connection is closed or its read deadline lapses
func readFrame(c *conn) (byte, error) { return 0, nil }

func readFrameRaw(c *conn) (byte, error) { return 0, nil }

var sink byte

// readLoop mirrors the real session read loop: the deadlined frame read is
// the poll.
//
//ermia:cancellable
func readLoop(c *conn) {
	for {
		b, err := readFrame(c)
		if err != nil {
			return
		}
		sink = b
	}
}

// readLoopRaw is the bug shape: the same loop over an unaudited read.
//
//ermia:cancellable
func readLoopRaw(c *conn) {
	for { // want `unbounded loop in cancellable function readLoopRaw never polls a cancel signal`
		b, err := readFrameRaw(c)
		if err != nil {
			return
		}
		sink = b
	}
}

// drainChannel: ranging over a channel ends when the channel closes.
//
//ermia:cancellable
func drainChannel(in chan byte) {
	for b := range in {
		sink = b
	}
}

//ermia:cancellable
func selectLoop(in chan byte, stop chan struct{}) {
	for {
		select {
		case b := <-in:
			sink = b
		case <-stop:
			return
		}
	}
}

//ermia:cancellable
func ctxLoop(ctx context.Context, work []byte) {
	for len(work) > 0 {
		if ctx.Err() != nil {
			return
		}
		sink, work = work[0], work[1:]
	}
}

// condLoopBad is the await-pending shape with the poll forgotten.
//
//ermia:cancellable
func condLoopBad(pending int) {
	for pending > 0 { // want `unbounded loop in cancellable function condLoopBad never polls a cancel signal`
		pending--
	}
}

// countedOK: three-clause counted loops are bounded by construction.
//
//ermia:cancellable
func countedOK(n int) {
	for i := 0; i < n; i++ {
		sink = byte(i)
	}
}

//ermia:cancellable
func boundedRangeOK(bs []byte) {
	for _, b := range bs {
		sink = b
	}
}

// delegates has no loops of its own: the annotation belongs on the callee.
//
//ermia:cancellable
func delegates(c *conn) error { // want `cancellable annotation on delegates asserts nothing`
	_, err := readFrame(c)
	return err
}

// outer delegates its poll obligation to a cancellable callee's own loops.
//
//ermia:cancellable
func outer(c *conn) {
	for {
		readLoop(c)
	}
}

// pointNoReason asserts prompt return without saying why.
//
//ermia:cancelpoint
func pointNoReason() error { return nil } // want `cancelpoint annotation on pointNoReason carries no reason`
