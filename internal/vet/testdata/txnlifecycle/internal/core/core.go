// Package core exercises the txnlifecycle lattice: clean idioms the repo
// actually uses (canonical abort-on-error, defer Abort, finisher helpers,
// wrapper producers, aliases) and each violation class the analyzer must
// flag exactly once.
package core

import "fix/internal/engine"

var k, v []byte

func bad() bool { return false }

// canonical is the runOnce idiom: abort on the error path, commit on the
// happy path.
func canonical(db engine.DB) error {
	txn := db.Begin(0)
	if err := txn.Insert(k, v); err != nil {
		txn.Abort()
		return err
	}
	return txn.Commit()
}

// deferAbort covers every exit, including panics, with one deferred Abort;
// Abort after the successful Commit is the documented-safe idiom.
func deferAbort(db engine.DB) error {
	txn := db.Begin(0)
	defer txn.Abort()
	if err := txn.Insert(k, v); err != nil {
		return err
	}
	return txn.Commit()
}

// deferClosure finishes through a deferred closure over the handle.
func deferClosure(db engine.DB) {
	txn := db.Begin(0)
	committed := false
	defer func() {
		if !committed {
			txn.Abort()
		}
	}()
	if txn.Insert(k, v) == nil {
		if txn.Commit() == nil {
			committed = true
		}
	}
}

// finish is a finisher: it ends its txn parameter on every path, so
// passing a live handle to it discharges the caller's obligation.
func finish(txn engine.Txn, err error) error {
	if err != nil {
		txn.Abort()
		return err
	}
	return txn.Commit()
}

func usesFinisher(db engine.DB) error {
	txn := db.Begin(0)
	err := txn.Insert(k, v)
	return finish(txn, err)
}

// freshHandle is a wrapper producer discovered by the fixpoint (the name
// is not Begin-like): it returns a live transaction, so its callers own
// the obligation.
func freshHandle(db engine.DB) engine.Txn {
	return db.Begin(0)
}

func callsWrapper(db engine.DB) {
	txn := freshHandle(db)
	txn.Abort()
}

func leaksFromWrapper(db engine.DB) error {
	txn := freshHandle(db) // want `transaction from freshHandle is not finished on the path ending at line \d+`
	_, err := txn.Get(k)
	return err
}

// aliases share one obligation: finishing through either name counts.
func aliases(db engine.DB) {
	a := db.Begin(0)
	b := a
	if b.Insert(k, v) != nil {
		b.Abort()
		return
	}
	a.Abort()
}

// panicsInstead: panic is a terminated path; the Abort before it covers
// the obligation there.
func panicsInstead(db engine.DB) {
	txn := db.Begin(0)
	if bad() {
		txn.Abort()
		panic("corrupt")
	}
	if txn.Commit() != nil {
		return
	}
}

// abortOnMaybe: Abort tolerates a maybe-finished handle (it is the
// defensive finisher), so conditional commit + unconditional abort is
// clean.
func abortOnMaybe(db engine.DB, ok bool) {
	txn := db.Begin(0)
	if ok {
		if txn.Commit() != nil {
			return
		}
		return
	}
	txn.Abort()
}

// ---- violations ----

func leaks(db engine.DB) error {
	txn := db.Begin(0) // want `transaction from db\.Begin is not finished on the path ending at line \d+`
	_, err := txn.Get(k)
	return err
}

func maybeLeaks(db engine.DB, ok bool) {
	txn := db.Begin(0) // want `transaction from db\.Begin may leak: finished on some paths`
	if ok {
		txn.Abort()
	}
}

func commitsTwice(db engine.DB) {
	txn := db.Begin(0)
	if txn.Commit() != nil {
		return
	}
	if txn.Commit() != nil { // want `already finished; this Commit finishes it twice`
		return
	}
}

func usesAfterFinish(db engine.DB) {
	txn := db.Begin(0)
	txn.Abort()
	txn.Insert(k, v) // want `use of transaction from db\.Begin after it finished \(Insert on a finished handle\)`
}

func maybeUses(db engine.DB, ok bool) error {
	txn := db.Begin(0)
	if ok {
		if txn.Commit() != nil {
			txn.Abort()
		}
	}
	_, err := txn.Get(k) // want `may already be finished on some path reaching this Get`
	txn.Abort()
	return err
}

func discards(db engine.DB) {
	db.Begin(0) // want `live transaction but is discarded`
}

func overwrites(db engine.DB) {
	txn := db.Begin(0) // want `overwritten at line \d+ by a new transaction while still unfinished`
	txn = db.Begin(0)
	txn.Abort()
}

func leaksInLoop(db engine.DB, n int) {
	for i := 0; i < n; i++ {
		txn := db.Begin(0) // want `begun inside this loop is still live when the iteration ends`
		txn.Insert(k, v)
	}
}

func handsToGoroutine(db engine.DB) {
	txn := db.Begin(0)
	go func() { // want `escapes through a goroutine closure`
		txn.Abort()
	}()
}

func sendsToChannel(db engine.DB, ch chan engine.Txn) {
	txn := db.Begin(0)
	ch <- txn // want `escapes through a channel send`
}

type holder struct{ txn engine.Txn }

func storesInField(db engine.DB, h *holder) {
	txn := db.Begin(0)
	h.txn = txn // want `escapes through a struct field`
}

// parkNoReason asserts ownership transfer without saying where the
// obligation goes — an unaudited escape hatch is no audit at all.
//
//ermia:txn-owner
func parkNoReason(db engine.DB, h *holder) { // want `txn-owner annotation on parkNoReason carries no reason`
	txn := db.Begin(0)
	h.txn = txn
}
