// Package server reproduces the bug shape the real query handler has to
// dodge: a worker slot and snapshot transaction acquired up front, then an
// early error return that releases the slot but forgets the Abort — the
// leaked snapshot pins its worker slot and, under SSN, the exclusion
// windows of everything it read.
package server

import "fix/internal/engine"

type session struct {
	db   engine.DB
	open map[uint64]engine.Txn
}

func (s *session) acquire() int   { return 0 }
func (s *session) release(i int) {}

// handleQueryLeaky is the PR 8 bug shape: the plan-validation error path
// releases the slot but never finishes the snapshot transaction.
func (s *session) handleQueryLeaky(planBad bool) {
	slot := s.acquire()
	txn := s.db.BeginReadOnly(slot) // want `not finished on the path ending at line \d+`
	if planBad {
		s.release(slot)
		return // BUG: txn.Abort() missing on this path
	}
	txn.Abort()
	s.release(slot)
}

// handleQueryFixed is the corrected shape: every path finishes the txn.
func (s *session) handleQueryFixed(planBad bool) {
	slot := s.acquire()
	txn := s.db.BeginReadOnly(slot)
	if planBad {
		txn.Abort()
		s.release(slot)
		return
	}
	txn.Abort()
	s.release(slot)
}

// handleBegin parks an open transaction in the session registry — an
// audited ownership transfer, mirroring the real server's txn map.
//
//ermia:txn-owner session registry owns the txn; teardown aborts leftovers
func (s *session) handleBegin(id uint64) {
	txn := s.db.Begin(0)
	s.open[id] = txn
}

// handleBeginUnaudited is the same store without the annotation.
func (s *session) handleBeginUnaudited(id uint64) {
	txn := s.db.Begin(0)
	s.open[id] = txn // want `escapes through a map or slice element`
}
