// Package engine is the fixture's stand-in for the real engine: the
// analyzer recognizes transaction handles structurally (Commit() error +
// Abort() in the method set), so this mirror of the real interface is all
// it needs.
package engine

// Txn mirrors the real contract: ends with exactly one Commit or Abort;
// Abort is safe after a failed Commit.
type Txn interface {
	Get(k []byte) ([]byte, error)
	Insert(k, v []byte) error
	Commit() error
	Abort()
}

// DB hands out transactions; Begin* through an interface is the dynamic
// dispatch the name-based producer seeding covers.
type DB interface {
	Begin(worker int) Txn
	BeginReadOnly(worker int) Txn
}

type db struct{}

func New() DB { return db{} }

type txn struct{ done bool }

func (db) Begin(worker int) Txn         { return &txn{} }
func (db) BeginReadOnly(worker int) Txn { return &txn{} }

func (t *txn) Get(k []byte) ([]byte, error) { return nil, nil }
func (t *txn) Insert(k, v []byte) error     { return nil }
func (t *txn) Commit() error                { t.done = true; return nil }
func (t *txn) Abort()                       { t.done = true }
