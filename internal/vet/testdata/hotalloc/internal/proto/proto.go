// Package proto exercises hotalloc: clean zero-alloc append helpers (the
// real frame-encode shape), and the two real escape shapes — a header
// array spilled to the heap by an interface read (the ReadFrameD shape)
// and a freshly made buffer returned to the caller.
package proto

import "io"

// AppendU32 is the real encode-helper shape: appends into the caller's
// buffer, nothing escapes.
//
//ermia:hotpath frame encoding runs once per request on every connection
func AppendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// readsHeader is the ReadFrameD bug shape: the fixed-size header array is
// passed to an interface method, so the compiler spills it to the heap —
// one hidden allocation per frame.
//
//ermia:hotpath frame decoding runs once per request
func readsHeader(r io.Reader) error {
	var h [16]byte // want `hotpath function readsHeader allocates: moved to heap: h`
	_, err := r.Read(h[:])
	return err
}

// freshBuffer returns a new slice: an allocation per call by design, which
// disqualifies it from the hotpath gate (budget it with AllocsPerRun
// instead).
//
//ermia:hotpath
func freshBuffer(n int) []byte { // want `hotpath annotation on freshBuffer carries no reason`
	buf := make([]byte, n) // want `hotpath function freshBuffer allocates: make\(\[\]byte, n\) escapes to heap`
	return buf
}

// coldAllocates is unannotated: its escapes are nobody's business.
func coldAllocates() *int {
	x := 7
	return &x
}

var sink error

func use(r io.Reader) {
	sink = readsHeader(r)
	_ = freshBuffer(8)
	_ = coldAllocates()
	_ = AppendU32(nil, 1)
}
