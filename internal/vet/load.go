package vet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// buildCtx decides which files belong to the build, honoring //go:build
// constraints and GOOS/GOARCH file-name suffixes, so tag-gated stub pairs
// (like alloctest's race / !race files) load as one declaration instead of
// a redeclaration error.
var buildCtx = build.Default

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("ermia/internal/wal").
	Path string
	// Dir is the absolute directory holding the package's files.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
}

// Module is a whole loaded module: every package, sharing one FileSet so
// positions are comparable across packages.
type Module struct {
	// Path is the module path from go.mod ("ermia").
	Path string
	// Root is the absolute module root directory.
	Root string
	Fset *token.FileSet
	// Pkgs is every loaded package, sorted by import path.
	Pkgs []*Package

	byPath map[string]*Package
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// LookupSuffix returns the unique package whose import path equals suffix or
// ends in "/"+suffix, or nil. Analyzers key on path suffixes
// ("internal/engine") so the same code runs against the real module and
// against fixture modules that mirror the layout under a different root.
func (m *Module) LookupSuffix(suffix string) *Package {
	for _, p := range m.Pkgs {
		if p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix) {
			return p
		}
	}
	return nil
}

// loader resolves module-internal imports to packages it type-checks itself
// and delegates everything else (the standard library) to the compiler's
// source importer. No golang.org/x/tools involved.
type loader struct {
	fset    *token.FileSet
	modPath string
	root    string
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// Load parses and type-checks every package under root. modPath is the
// module path the directory tree is rooted at; dir names map to import paths
// by joining. Test files (_test.go) and testdata/vendor/hidden directories
// are skipped: the analyzers enforce invariants on shipped code.
func Load(root, modPath string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		modPath: modPath,
		root:    abs,
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: modPath, Root: abs, Fset: l.fset, byPath: make(map[string]*Package)}
	for _, dir := range dirs {
		p, err := l.load(l.pathFor(dir))
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no buildable files
		}
		mod.Pkgs = append(mod.Pkgs, p)
		mod.byPath[p.Path] = p
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	return mod, nil
}

// LoadModule locates the enclosing go.mod starting at dir and loads that
// module.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := FindModule(dir)
	if err != nil {
		return nil, err
	}
	return Load(root, modPath)
}

// FindModule walks upward from dir to the nearest go.mod and returns the
// module root and module path.
func FindModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("vet: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("vet: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

// packageDirs returns every directory under root that holds at least one
// non-test .go file, skipping testdata, vendor, and hidden directories.
func (l *loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// pathFor maps an absolute directory to its import path.
func (l *loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module-internal import path to its directory.
func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

func (l *loader) internal(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are loaded
// (and type-checked) by the loader itself; everything else goes to the
// standard library source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if l.internal(path) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("vet: import %q: no Go files", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}

// load parses and type-checks one module-internal package, memoized.
// Dependencies are resolved recursively through ImportFrom.
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("vet: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := buildCtx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: parse: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: typecheck %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}
