package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TxnLifecycle proves, interprocedurally, that every transaction handle
// obtained from a Begin-style call reaches exactly one finish (Commit or
// Abort) on every return path, is never used after it finished, and is
// never finished twice. This is the engine.Txn contract ("a Txn is
// single-goroutine; it ends with exactly one Commit or Abort call") that
// the SI/SSN machinery leans on: a leaked transaction pins its worker
// slot, its epoch guard, and — under SSN — the exclusion windows of
// everything it read.
//
// The analysis is a forward abstract interpretation over each function
// body, with interprocedural summaries computed to a fixpoint first:
//
//   - producer: a function that returns a freshly begun transaction
//     (seeded by name prefix Begin/begin with a txn-typed result, then
//     propagated through wrappers that return a live obligation);
//   - finisher: a function that finishes a txn-typed parameter on every
//     return path (passing a live handle to it discharges the obligation
//     at the call site).
//
// Obligations arise at calls to producers. They are discharged by Commit
// or Abort on the handle (directly or via defer, which also covers panic
// paths), by passing the handle to a finisher, or by returning the handle
// (ownership moves to the caller, which makes the enclosing function a
// producer itself).
//
// Abort after Commit is allowed: the engine documents Abort as safe after
// a failed Commit, and the defer-Abort-then-return-Commit idiom depends on
// it. A second Commit, or any operation on a finished handle, is flagged.
//
// Storing a handle into a struct field, map, slice, channel, or global —
// or handing it to a goroutine — moves the obligation somewhere the
// dataflow cannot follow. Such stores are only legal inside functions
// annotated
//
//	//ermia:txn-owner <reason>
//
// which declares an audited ownership transfer (the server session
// registry parks open transactions in a map keyed by wire txn id; the
// bench loaders hold a bulk-load transaction across batches). The reason
// is mandatory: an unaudited escape is exactly the bug shape this
// analyzer exists for.
//
// Dynamic dispatch the type-checker cannot resolve (interface method
// calls, function-valued arguments) is treated as a borrow: the callee
// uses the handle but the obligation stays with the caller. That matches
// the repo's conventions (the closure RunWithRetry is handed borrows the
// txn) and keeps the analysis finite. Synchronous closures capturing a
// handle are borrows too; go statements are escapes, because a Txn is
// single-goroutine by contract.
var TxnLifecycle = &Analyzer{
	Name: "txnlifecycle",
	Doc:  "prove every begun transaction reaches exactly one Commit/Abort on all paths",
	Run:  runTxnLifecycle,
}

// ---- txn type detection ----

// isTxnType reports whether t is a transaction handle type: its method set
// (through a pointer for concrete types) contains both Commit() error and
// Abort(). This matches the engine.Txn interface and every concrete engine
// transaction without naming any package, so fixture mini-modules work
// identically.
func isTxnType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		if _, isNamed := t.(*types.Named); !isNamed {
			return false
		}
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	commit, abort := false, false
	for i := 0; i < ms.Len(); i++ {
		f, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig, _ := f.Type().(*types.Signature)
		if sig == nil {
			continue
		}
		switch f.Name() {
		case "Commit":
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 {
				commit = true
			}
		case "Abort":
			if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
				abort = true
			}
		}
	}
	return commit && abort
}

// ---- obligation lattice ----

type oblState int

const (
	oblLive  oblState = iota // begun, not yet finished
	oblDone                  // finished (Commit or Abort ran)
	oblMaybe                 // finished on some merged paths only
	oblMoved                 // ownership transferred (returned, escaped, finisher)
)

// obligation is one tracked live transaction. Aliased variables share the
// same obligation record inside one environment.
type obligation struct {
	pos      token.Pos // the producing call
	call     string    // the producing call's rendering, for messages
	state    oblState
	deferred bool // a deferred finisher covers every exit from here on
	param    bool // summary mode: the function's own txn parameter
	paramIdx int
}

// env maps variables to their obligations, branch-sensitively.
type env map[*types.Var]*obligation

func (e env) clone() env {
	out := make(env, len(e))
	copied := make(map[*obligation]*obligation, len(e))
	for v, o := range e {
		c, ok := copied[o]
		if !ok {
			dup := *o
			c = &dup
			copied[o] = c
		}
		out[v] = c
	}
	return out
}

// merge folds a post-branch environment b into e: obligations known to
// both keep their state when it agrees and degrade to oblMaybe when it
// does not (oblMoved wins outright — the obligation is someone else's on
// that path). Variables only b knows were declared inside the branch;
// their leak check already ran at the branch's end.
func (e env) merge(b env) {
	for v, o := range e {
		bo, ok := b[v]
		if !ok {
			continue
		}
		if bo.state != o.state {
			if o.state == oblMoved || bo.state == oblMoved {
				o.state = oblMoved
			} else {
				o.state = oblMaybe
			}
		}
		o.deferred = o.deferred && bo.deferred
	}
	// Obligations born inside the branch (their variable is out of scope
	// now, or was first assigned there) are adopted as-is: nothing after
	// the merge point can finish a branch-scoped handle, so a live one is
	// a leak the next exit check must see.
	for v, bo := range b {
		if _, ok := e[v]; !ok {
			e[v] = bo
		}
	}
}

// ---- interprocedural summaries ----

type txnSummary struct {
	producer           bool         // returns a freshly begun transaction
	finishes           map[int]bool // flat param index -> finished on all paths
	owner              bool         // //ermia:txn-owner: audited ownership sink
	ownerReasonMissing bool
}

type txnSummaries map[*types.Func]*txnSummary

// ---- driver ----

func runTxnLifecycle(m *Module) []Finding {
	funcs := moduleFuncs(m)
	sums := make(txnSummaries, len(funcs))

	for obj, fi := range funcs {
		s := &txnSummary{finishes: make(map[int]bool)}
		if d, ok := hasDirective(fi.decl.Doc, "txn-owner"); ok {
			s.owner = true
			s.ownerReasonMissing = strings.TrimSpace(d.raw) == ""
		}
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil && beginLikeName(obj.Name()) && resultsContainTxn(sig) {
			s.producer = true
		}
		sums[obj] = s
	}

	// Fixpoint: summary-mode analysis discovers wrapper producers (a
	// function returning a live obligation) and parameter finishers; both
	// cascade through call chains, so iterate until stable.
	for iter := 0; iter < 10; iter++ {
		changed := false
		for obj, fi := range funcs {
			if fi.decl.Body == nil {
				continue
			}
			a := &txnAnalysis{m: m, pkg: fi.pkg, sums: sums, summaryMode: true}
			a.analyzeFunc(fi.decl.Type, fi.decl.Body)
			s := sums[obj]
			if a.returnsLive && !s.producer {
				s.producer = true
				changed = true
			}
			for i, fin := range a.paramFinished {
				if fin && !s.finishes[i] {
					s.finishes[i] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	var out []Finding
	for obj, fi := range funcs {
		s := sums[obj]
		if s.ownerReasonMissing {
			out = append(out, Finding{
				Analyzer: "txnlifecycle",
				Pos:      m.Fset.Position(fi.decl.Name.Pos()),
				Message: fmt.Sprintf("txn-owner annotation on %s carries no reason; write //ermia:txn-owner <where ownership goes and who finishes the txn>",
					obj.Name()),
			})
		}
		if fi.decl.Body == nil {
			continue
		}
		a := &txnAnalysis{m: m, pkg: fi.pkg, sums: sums, owner: s.owner, fname: obj.Name()}
		a.analyzeFunc(fi.decl.Type, fi.decl.Body)
		out = append(out, a.findings...)
	}
	return out
}

func beginLikeName(name string) bool {
	return strings.HasPrefix(name, "Begin") || strings.HasPrefix(name, "begin")
}

func resultsContainTxn(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isTxnType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// ---- per-function abstract interpretation ----

type txnAnalysis struct {
	m    *Module
	pkg  *Package
	sums txnSummaries

	summaryMode bool // collect producer/finisher facts, emit no findings
	owner       bool // enclosing function is an audited ownership sink
	fname       string

	findings []Finding

	// Summary-mode outputs.
	returnsLive   bool
	paramFinished map[int]bool
	paramSeen     map[int]bool
}

func (a *txnAnalysis) report(pos token.Pos, format string, args ...any) {
	if a.summaryMode {
		return
	}
	a.findings = append(a.findings, Finding{
		Analyzer: "txnlifecycle",
		Pos:      a.m.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

func (a *txnAnalysis) analyzeFunc(ftyp *ast.FuncType, body *ast.BlockStmt) {
	e := make(env)
	if a.summaryMode {
		a.paramFinished = make(map[int]bool)
		a.paramSeen = make(map[int]bool)
		idx := 0
		if ftyp.Params != nil {
			for _, field := range ftyp.Params.List {
				if len(field.Names) == 0 {
					idx++
					continue
				}
				for _, name := range field.Names {
					if v, _ := a.pkg.Info.Defs[name].(*types.Var); v != nil && isTxnType(v.Type()) {
						e[v] = &obligation{pos: name.Pos(), call: name.Name, state: oblLive, param: true, paramIdx: idx}
					}
					idx++
				}
			}
		}
	}
	if !a.stmt(body, e) {
		a.exitCheck(e, body.End())
	}
}

// exitCheck runs at every return and at falling off the end of the body:
// live obligations without a deferred finisher leak; parameters feed the
// finisher summary instead.
func (a *txnAnalysis) exitCheck(e env, at token.Pos) {
	seen := make(map[*obligation]bool)
	for _, o := range e {
		if seen[o] {
			continue
		}
		seen[o] = true
		if o.param {
			fin := o.state == oblDone || o.deferred
			if !a.paramSeen[o.paramIdx] {
				a.paramSeen[o.paramIdx] = true
				a.paramFinished[o.paramIdx] = fin
			} else if !fin {
				a.paramFinished[o.paramIdx] = false
			}
			continue
		}
		if o.deferred || o.state == oblDone || o.state == oblMoved {
			continue
		}
		line := a.m.Fset.Position(at).Line
		switch o.state {
		case oblLive:
			a.report(o.pos, "transaction from %s is not finished on the path ending at line %d: every path needs exactly one Commit/Abort (or a defer Abort)", o.call, line)
		case oblMaybe:
			a.report(o.pos, "transaction from %s may leak: finished on some paths but not on the one ending at line %d", o.call, line)
		}
	}
}

// scopeEndCheck flags obligations begun inside a loop body that are still
// live when the iteration ends: the next iteration rebinds the variable
// and the old handle leaks.
func (a *txnAnalysis) scopeEndCheck(before, after env, at token.Pos) {
	seen := make(map[*obligation]bool)
	known := make(map[*types.Var]bool, len(before))
	for v := range before {
		known[v] = true
	}
	for v, o := range after {
		if known[v] || seen[o] || o.param {
			continue
		}
		seen[o] = true
		if o.deferred || o.state == oblDone || o.state == oblMoved {
			continue
		}
		a.report(o.pos, "transaction from %s begun inside this loop is still live when the iteration ends at line %d; it leaks when the next iteration rebinds the variable",
			o.call, a.m.Fset.Position(at).Line)
		o.state = oblMoved // report once, not again at the function's exit
	}
}

// ---- statements ----

// stmt interprets s in e and reports whether the path terminated (return,
// panic, fatal call, branch).
func (a *txnAnalysis) stmt(s ast.Stmt, e env) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, st := range s.List {
			if a.stmt(st, e) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		a.expr(s.X, e, true)
		if isTerminalCall(a.pkg.Info, s.X) {
			return true
		}
		return false
	case *ast.AssignStmt:
		a.assign(s, e)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					a.expr(val, e, false)
					if i < len(vs.Names) {
						a.bind(vs.Names[i], val, e)
					}
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.expr(r, e, false)
			// Returning the handle transfers ownership to the caller.
			if o := a.trackedOperand(r, e); o != nil && !o.param {
				if o.state == oblLive || o.state == oblMaybe {
					o.state = oblMoved
					a.returnsLive = true
				}
			} else if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && a.producesTxn(call) {
				a.returnsLive = true
			}
		}
		a.exitCheck(e, s.Pos())
		return true
	case *ast.IfStmt:
		a.stmt(s.Init, e)
		a.expr(s.Cond, e, false)
		thenEnv := e.clone()
		thenTerm := a.stmt(s.Body, thenEnv)
		var elseTerm bool
		var elseEnv env
		if s.Else != nil {
			elseEnv = e.clone()
			elseTerm = a.stmt(s.Else, elseEnv)
		}
		switch {
		case s.Else == nil:
			if !thenTerm {
				e.merge(thenEnv)
			}
			return false
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			copyInto(e, elseEnv)
			return false
		case elseTerm:
			copyInto(e, thenEnv)
			return false
		default:
			copyInto(e, thenEnv)
			e.merge(elseEnv)
			return false
		}
	case *ast.ForStmt:
		a.stmt(s.Init, e)
		a.expr(s.Cond, e, false)
		bodyEnv := e.clone()
		term := a.stmt(s.Body, bodyEnv)
		if !term {
			a.stmt(s.Post, bodyEnv)
			a.scopeEndCheck(e, bodyEnv, s.Body.End())
			e.merge(bodyEnv)
		}
		// `for { ... }` with no break still falls through for our purposes:
		// break paths were treated as terminated, which is conservative.
		return false
	case *ast.RangeStmt:
		a.expr(s.X, e, false)
		bodyEnv := e.clone()
		if !a.stmt(s.Body, bodyEnv) {
			a.scopeEndCheck(e, bodyEnv, s.Body.End())
			e.merge(bodyEnv)
		}
		return false
	case *ast.SwitchStmt:
		a.stmt(s.Init, e)
		a.expr(s.Tag, e, false)
		return a.caseBodies(s.Body, e, hasDefaultClause(s.Body))
	case *ast.TypeSwitchStmt:
		a.stmt(s.Init, e)
		a.stmt(s.Assign, e)
		return a.caseBodies(s.Body, e, hasDefaultClause(s.Body))
	case *ast.SelectStmt:
		return a.caseBodies(s.Body, e, true)
	case *ast.DeferStmt:
		a.deferStmt(s, e)
		return false
	case *ast.GoStmt:
		a.goStmt(s, e)
		return false
	case *ast.SendStmt:
		a.expr(s.Chan, e, false)
		a.expr(s.Value, e, false)
		if o := a.trackedOperand(s.Value, e); o != nil && !o.param {
			a.escape(s.Value.Pos(), o, "a channel send")
		}
		return false
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, e)
	case *ast.BranchStmt:
		// break/continue/goto end this path conservatively: obligations
		// live here are re-checked where control actually resumes only for
		// returns; loop exits via break are assumed balanced.
		return true
	case *ast.IncDecStmt:
		a.expr(s.X, e, false)
		return false
	case *ast.EmptyStmt:
		return false
	default:
		// Everything else (go through unhandled statements' expressions
		// conservatively so calls inside them still take effect).
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				a.call(call, e, false)
				return false
			}
			return true
		})
		return false
	}
}

// copyInto replaces e's obligation states with those of src for shared
// variables (used when the other branch terminated).
func copyInto(e, src env) {
	for v, o := range e {
		if so, ok := src[v]; ok {
			*o = *so
		}
	}
	for v, so := range src {
		if _, ok := e[v]; !ok {
			e[v] = so
		}
	}
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// caseBodies interprets switch/select clause bodies against clones and
// merges the survivors. exhaustive reports whether one clause always runs
// (a default exists, or select which always takes some clause).
func (a *txnAnalysis) caseBodies(body *ast.BlockStmt, e env, exhaustive bool) bool {
	var survivors []env
	allTerm := true
	for _, c := range body.List {
		ce := e.clone()
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, x := range c.List {
				a.expr(x, e, false)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				a.stmt(c.Comm, ce)
			}
			stmts = c.Body
		}
		term := false
		for _, st := range stmts {
			if a.stmt(st, ce) {
				term = true
				break
			}
		}
		if !term {
			survivors = append(survivors, ce)
			allTerm = false
		}
	}
	if exhaustive && allTerm && len(body.List) > 0 {
		return true
	}
	if len(survivors) > 0 {
		if exhaustive {
			// Some clause always runs: the post state is the merge of the
			// surviving clauses alone.
			copyInto(e, survivors[0])
			survivors = survivors[1:]
		}
		// Otherwise the fall-past-every-case path keeps the entry state,
		// which e already holds; merge the survivors into it.
		for _, s := range survivors {
			e.merge(s)
		}
	}
	return false
}

// deferStmt handles deferred finishers: defer txn.Abort(), defer
// txn.Commit(), defer to a finisher with the handle as argument, and defer
// of a closure that finishes a captured handle.
func (a *txnAnalysis) deferStmt(s *ast.DeferStmt, e env) {
	call := s.Call
	// defer txn.Abort() / defer txn.Commit()
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if o := a.trackedOperand(sel.X, e); o != nil && (sel.Sel.Name == "Abort" || sel.Sel.Name == "Commit") {
			o.deferred = true
			return
		}
	}
	// defer func() { ... txn.Abort() ... }()
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for v, o := range e {
			if closureFinishes(a.pkg.Info, lit, v) {
				o.deferred = true
			}
		}
		_ = lit
		return
	}
	// defer finishHelper(txn, ...)
	a.call(call, e, false)
}

// closureFinishes reports whether the closure body contains a Commit or
// Abort call on the captured variable v.
func closureFinishes(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Commit" && sel.Sel.Name != "Abort" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// goStmt: handing a live handle to another goroutine is an escape (the
// contract says a Txn is single-goroutine).
func (a *txnAnalysis) goStmt(s *ast.GoStmt, e env) {
	for _, arg := range s.Call.Args {
		a.expr(arg, e, false)
		if o := a.trackedOperand(arg, e); o != nil && !o.param {
			a.escape(arg.Pos(), o, "a go statement")
		}
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		for v, o := range e {
			if o.state == oblLive && capturesVar(a.pkg.Info, lit, v) {
				a.escape(lit.Pos(), o, "a goroutine closure")
			}
		}
	}
}

func capturesVar(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---- assignments and escapes ----

func (a *txnAnalysis) assign(s *ast.AssignStmt, e env) {
	for _, r := range s.Rhs {
		a.expr(r, e, false)
	}
	// Stores into non-variable places (fields, maps, slices, derefs) are
	// escapes when the value is a live handle.
	for i, l := range s.Lhs {
		var r ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			r = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			r = s.Rhs[0]
		}
		switch lhs := ast.Unparen(l).(type) {
		case *ast.Ident:
			a.bind(lhs, r, e)
		default:
			a.expr(l, e, false)
			if r == nil {
				continue
			}
			if o := a.trackedOperand(r, e); o != nil && !o.param {
				a.escape(r.Pos(), o, describeStore(l))
			} else if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && a.producesTxn(call) {
				// Producer result stored straight into a field/map/deref
				// with no intermediate variable.
				tmp := &obligation{pos: call.Pos(), call: renderCall(call), state: oblLive}
				a.escape(r.Pos(), tmp, describeStore(l))
			}
		}
	}
}

func describeStore(l ast.Expr) string {
	switch ast.Unparen(l).(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.StarExpr:
		return "a pointer target"
	default:
		return "a store"
	}
}

// bind gives ident its new obligation (or clears tracking) after an
// assignment of r.
func (a *txnAnalysis) bind(id *ast.Ident, r ast.Expr, e env) {
	v := a.varOf(id)
	if v == nil {
		return
	}
	// Overwriting a variable that still owns a live obligation leaks it —
	// unless another alias still refers to it, which sharing handles:
	// dropping one alias keeps the obligation reachable through the rest,
	// and the exit check only looks at reachable obligations. A fully
	// orphaned live obligation is exactly a leak; detect it here.
	if old, ok := e[v]; ok && !old.param && (old.state == oblLive || old.state == oblMaybe) && !old.deferred {
		if refs(e, old) == 1 && !isTxnProducing(a, r) {
			// Rebinding to something unrelated while live: leak now.
			a.report(old.pos, "transaction from %s is overwritten at line %d while still unfinished",
				old.call, a.m.Fset.Position(id.Pos()).Line)
		} else if refs(e, old) == 1 && isTxnProducing(a, r) {
			a.report(old.pos, "transaction from %s is overwritten at line %d by a new transaction while still unfinished",
				old.call, a.m.Fset.Position(id.Pos()).Line)
		}
	}
	delete(e, v)
	if r == nil {
		return
	}
	if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && a.producesTxn(call) {
		e[v] = &obligation{pos: call.Pos(), call: renderCall(call), state: oblLive}
		return
	}
	// Alias: y := x shares the obligation.
	if o := a.trackedOperand(r, e); o != nil {
		e[v] = o
	}
}

func isTxnProducing(a *txnAnalysis, r ast.Expr) bool {
	if r == nil {
		return false
	}
	call, ok := ast.Unparen(r).(*ast.CallExpr)
	return ok && a.producesTxn(call)
}

func refs(e env, o *obligation) int {
	n := 0
	for _, x := range e {
		if x == o {
			n++
		}
	}
	return n
}

func (a *txnAnalysis) varOf(id *ast.Ident) *types.Var {
	if v, ok := a.pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := a.pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// trackedOperand returns the obligation of an expression that is a plain
// reference to a tracked variable (possibly parenthesized).
func (a *txnAnalysis) trackedOperand(x ast.Expr, e env) *obligation {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	v := a.varOf(id)
	if v == nil {
		return nil
	}
	return e[v]
}

func (a *txnAnalysis) escape(pos token.Pos, o *obligation, where string) {
	if a.owner {
		o.state = oblMoved
		return
	}
	a.report(pos, "transaction from %s escapes through %s; the dataflow cannot prove it finishes — move the store into a function annotated //ermia:txn-owner <reason>",
		o.call, where)
	o.state = oblMoved // report once, not on every later path
}

// ---- expressions ----

// expr interprets x; discarded marks an expression statement (whose
// produced transaction, if any, would be dropped on the floor).
func (a *txnAnalysis) expr(x ast.Expr, e env, discarded bool) {
	switch x := x.(type) {
	case nil:
		return
	case *ast.CallExpr:
		a.call(x, e, discarded)
	case *ast.ParenExpr:
		a.expr(x.X, e, discarded)
	case *ast.UnaryExpr:
		a.expr(x.X, e, false)
	case *ast.BinaryExpr:
		a.expr(x.X, e, false)
		a.expr(x.Y, e, false)
	case *ast.StarExpr:
		a.expr(x.X, e, false)
	case *ast.SelectorExpr:
		a.expr(x.X, e, false)
	case *ast.IndexExpr:
		a.expr(x.X, e, false)
		a.expr(x.Index, e, false)
	case *ast.SliceExpr:
		a.expr(x.X, e, false)
	case *ast.TypeAssertExpr:
		a.expr(x.X, e, false)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			a.expr(val, e, false)
			if o := a.trackedOperand(val, e); o != nil && !o.param && o.state == oblLive {
				a.escape(val.Pos(), o, "a composite literal")
			}
		}
	case *ast.FuncLit:
		// Synchronous closures borrow captured handles; only analyze the
		// literal body for its own begun transactions.
		sub := &txnAnalysis{m: a.m, pkg: a.pkg, sums: a.sums, summaryMode: a.summaryMode, owner: a.owner, fname: a.fname + " (closure)"}
		sub.paramFinished = make(map[int]bool)
		sub.paramSeen = make(map[int]bool)
		if x.Body != nil {
			if !sub.stmt(x.Body, make(env)) {
				sub.exitCheck(make(env), x.Body.End())
			}
		}
		a.findings = append(a.findings, sub.findings...)
	case *ast.KeyValueExpr:
		a.expr(x.Value, e, false)
	}
}

// call interprets one call expression: finish/use semantics on tracked
// receivers, finisher/owner semantics on tracked arguments, and discarded
// producer results.
func (a *txnAnalysis) call(call *ast.CallExpr, e env, discarded bool) {
	// Arguments and function position first (inner calls run first).
	a.expr(call.Fun, e, false)
	for _, arg := range call.Args {
		a.expr(arg, e, false)
	}

	// Method call on a tracked handle.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if o := a.trackedOperand(sel.X, e); o != nil {
			a.method(call, sel.Sel.Name, o)
		}
	}

	callee := calleeOf(a.pkg.Info, call)
	sum := a.sums[callee]

	// Tracked handles passed as arguments.
	for i, arg := range call.Args {
		o := a.trackedOperand(arg, e)
		if o == nil {
			continue
		}
		switch {
		case sum != nil && sum.owner:
			if o.state == oblDone {
				a.report(arg.Pos(), "finished transaction from %s handed to txn-owner %s", o.call, callee.Name())
			}
			o.state = oblMoved
		case sum != nil && sum.finishes[i]:
			switch o.state {
			case oblDone:
				a.report(arg.Pos(), "transaction from %s is already finished; %s would finish it twice", o.call, callee.Name())
			case oblMoved:
			default:
				o.state = oblDone
			}
		default:
			// Borrow: unresolved callee or non-finishing helper.
		}
	}

	// A produced transaction with nowhere to go leaks immediately.
	if discarded && a.producesTxn(call) {
		a.report(call.Pos(), "result of %s is a live transaction but is discarded; it can never be finished", renderCall(call))
	}
}

// method applies Commit/Abort/use semantics for a method call on a tracked
// handle.
func (a *txnAnalysis) method(call *ast.CallExpr, name string, o *obligation) {
	switch name {
	case "Commit":
		switch o.state {
		case oblLive:
			o.state = oblDone
		case oblDone:
			a.report(call.Pos(), "transaction from %s is already finished; this Commit finishes it twice", o.call)
		case oblMaybe:
			a.report(call.Pos(), "transaction from %s may already be finished on some path; this Commit can finish it twice", o.call)
			o.state = oblDone
		}
	case "Abort":
		// Abort is the defensive finisher: legal on a live handle and —
		// per the engine contract — after a failed Commit, so any number
		// of Aborts after a finish are tolerated.
		o.state = oblDone
	default:
		switch o.state {
		case oblDone:
			a.report(call.Pos(), "use of transaction from %s after it finished (%s on a finished handle)", o.call, name)
		case oblMaybe:
			a.report(call.Pos(), "transaction from %s may already be finished on some path reaching this %s", o.call, name)
		}
	}
}

// producesTxn reports whether the call yields a fresh transaction the
// caller must finish: a resolved producer per summary, or an unresolvable
// (interface) call whose method name is Begin-like and whose result is
// txn-typed.
func (a *txnAnalysis) producesTxn(call *ast.CallExpr) bool {
	tv, ok := a.pkg.Info.Types[call]
	if !ok {
		return false
	}
	hasTxnResult := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isTxnType(t.At(i).Type()) {
				hasTxnResult = true
			}
		}
	default:
		hasTxnResult = isTxnType(tv.Type)
	}
	if !hasTxnResult {
		return false
	}
	if callee := calleeOf(a.pkg.Info, call); callee != nil {
		if s := a.sums[callee]; s != nil {
			return s.producer
		}
		// Resolved but extra-module (stdlib): only by name.
		return beginLikeName(callee.Name())
	}
	// Dynamic dispatch: judge by the spelled method name.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if beginLikeName(fun.Sel.Name) {
			return true
		}
		if sel, ok := a.pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if s := a.sums[f]; s != nil {
					return s.producer
				}
				return beginLikeName(f.Name())
			}
		}
	case *ast.Ident:
		return beginLikeName(fun.Name)
	}
	return false
}

func renderCall(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "the Begin call"
}

// isTerminalCall reports whether the expression statement never returns:
// panic, os.Exit, log.Fatal*, runtime.Goexit.
func isTerminalCall(info *types.Info, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	callee := calleeOf(info, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "os":
		return callee.Name() == "Exit"
	case "log":
		return strings.HasPrefix(callee.Name(), "Fatal") || strings.HasPrefix(callee.Name(), "Panic")
	case "runtime":
		return callee.Name() == "Goexit"
	}
	return false
}
