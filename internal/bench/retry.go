package bench

import "ermia/internal/engine"

// isRetryable routes the harness's abort handling through the shared
// outcome taxonomy: a retry is warranted exactly when Classify says the
// error is a conflict (availability and fatal errors must surface).
func isRetryable(err error) bool { return engine.Classify(err) == engine.OutcomeConflict }
