package bench

import "ermia/internal/engine"

// isRetryable mirrors engine.IsRetryable; kept in a tiny wrapper so the
// harness's outcome taxonomy stays in one place.
func isRetryable(err error) bool { return engine.IsRetryable(err) }
