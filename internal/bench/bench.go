// Package bench is the workload harness behind every experiment in
// EXPERIMENTS.md: it runs N worker goroutines against an engine for a fixed
// duration, classifying each execution as commit, conflict abort, or
// intentional (user) abort, and recording per-transaction-type latency.
package bench

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"

	"ermia/internal/xrand"
)

// Exec runs one transaction on behalf of a worker and returns its type name
// and outcome error (nil = committed).
type Exec func(worker int, rng *xrand.Rand) (kind string, err error)

// Options configures a harness run.
type Options struct {
	Workers  int
	Duration time.Duration
	Exec     Exec
	// IsUserAbort classifies intentional benchmark rollbacks (e.g. TPC-C's
	// 1% NewOrder abort); they count as neither commit nor conflict.
	IsUserAbort func(error) bool
	// Seed perturbs worker RNGs so repeated runs differ.
	Seed uint64
	// WarmupFraction of Duration runs before counters reset. Default 0.
	WarmupFraction float64
}

// KindStats aggregates outcomes for one transaction type.
type KindStats struct {
	Attempts   uint64
	Commits    uint64
	Aborts     uint64 // concurrency-conflict aborts
	UserAborts uint64

	latSum   time.Duration
	latMin   time.Duration
	latMax   time.Duration
	latCount uint64
	// buckets[i] counts latencies in [2^i, 2^(i+1)) microseconds.
	buckets [40]uint64
}

// AbortRatio returns conflict aborts / attempts (excluding user aborts).
func (k *KindStats) AbortRatio() float64 {
	att := k.Attempts - k.UserAborts
	if att == 0 {
		return 0
	}
	return float64(k.Aborts) / float64(att)
}

// MeanLatency returns the average committed-execution latency.
func (k *KindStats) MeanLatency() time.Duration {
	if k.latCount == 0 {
		return 0
	}
	return k.latSum / time.Duration(k.latCount)
}

// MinLatency returns the fastest committed execution.
func (k *KindStats) MinLatency() time.Duration { return k.latMin }

// MaxLatency returns the slowest committed execution.
func (k *KindStats) MaxLatency() time.Duration { return k.latMax }

// Percentile returns an approximate latency percentile (0 < p <= 1) from
// the log-scale histogram.
func (k *KindStats) Percentile(p float64) time.Duration {
	if k.latCount == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(k.latCount)))
	var cum uint64
	for i, c := range k.buckets {
		cum += c
		if cum >= target {
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return k.latMax
}

func (k *KindStats) record(lat time.Duration, outcome int) {
	k.Attempts++
	switch outcome {
	case outcomeCommit:
		k.Commits++
		k.latSum += lat
		k.latCount++
		if k.latMin == 0 || lat < k.latMin {
			k.latMin = lat
		}
		if lat > k.latMax {
			k.latMax = lat
		}
		us := lat.Microseconds()
		idx := 0
		if us > 0 {
			idx = bits.Len64(uint64(us)) - 1
		}
		if idx >= len(k.buckets) {
			idx = len(k.buckets) - 1
		}
		k.buckets[idx]++
	case outcomeAbort:
		k.Aborts++
	case outcomeUser:
		k.UserAborts++
	}
}

func (k *KindStats) merge(o *KindStats) {
	k.Attempts += o.Attempts
	k.Commits += o.Commits
	k.Aborts += o.Aborts
	k.UserAborts += o.UserAborts
	k.latSum += o.latSum
	k.latCount += o.latCount
	if k.latMin == 0 || (o.latMin > 0 && o.latMin < k.latMin) {
		k.latMin = o.latMin
	}
	if o.latMax > k.latMax {
		k.latMax = o.latMax
	}
	for i := range k.buckets {
		k.buckets[i] += o.buckets[i]
	}
}

const (
	outcomeCommit = iota
	outcomeAbort
	outcomeUser
)

// Result summarizes a harness run.
type Result struct {
	Duration time.Duration
	Workers  int
	Kinds    map[string]*KindStats
	Err      error // first non-retryable workload error, if any
}

// TotalCommits sums commits across kinds.
func (r *Result) TotalCommits() uint64 {
	var n uint64
	for _, k := range r.Kinds {
		n += k.Commits
	}
	return n
}

// Throughput returns committed transactions per second.
func (r *Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.TotalCommits()) / r.Duration.Seconds()
}

// KindThroughput returns one type's committed transactions per second.
func (r *Result) KindThroughput(kind string) float64 {
	k, ok := r.Kinds[kind]
	if !ok || r.Duration <= 0 {
		return 0
	}
	return float64(k.Commits) / r.Duration.Seconds()
}

// Run drives Options.Workers goroutines until the deadline.
func Run(opts Options) Result {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	isUser := opts.IsUserAbort
	if isUser == nil {
		isUser = func(error) bool { return false }
	}

	type workerResult struct {
		kinds map[string]*KindStats
		err   error
	}
	results := make([]workerResult, opts.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	warmupUntil := start.Add(time.Duration(opts.WarmupFraction * float64(opts.Duration)))
	deadline := start.Add(opts.Duration)

	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New2(uint64(id)+1, opts.Seed+0xBEEF)
			kinds := map[string]*KindStats{}
			warm := opts.WarmupFraction > 0
			for {
				now := time.Now()
				if now.After(deadline) {
					break
				}
				if warm && now.After(warmupUntil) {
					kinds = map[string]*KindStats{}
					warm = false
				}
				t0 := time.Now()
				kind, err := opts.Exec(id, rng)
				lat := time.Since(t0)
				ks := kinds[kind]
				if ks == nil {
					ks = &KindStats{}
					kinds[kind] = ks
				}
				switch {
				case err == nil:
					ks.record(lat, outcomeCommit)
				case isUser(err):
					ks.record(lat, outcomeUser)
				case isRetryable(err):
					ks.record(lat, outcomeAbort)
				default:
					results[id] = workerResult{kinds: kinds,
						err: fmt.Errorf("%s (worker %d): %w", kind, id, err)}
					return
				}
			}
			results[id] = workerResult{kinds: kinds}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if opts.WarmupFraction > 0 {
		elapsed = deadline.Sub(warmupUntil)
	}

	out := Result{Duration: elapsed, Workers: opts.Workers, Kinds: map[string]*KindStats{}}
	for _, wr := range results {
		if wr.err != nil && out.Err == nil {
			out.Err = wr.err
		}
		for name, ks := range wr.kinds {
			if agg := out.Kinds[name]; agg != nil {
				agg.merge(ks)
			} else {
				cp := *ks
				out.Kinds[name] = &cp
			}
		}
	}
	return out
}

// Table renders the result as an aligned text table, one row per kind.
func (r *Result) Table() string {
	names := make([]string, 0, len(r.Kinds))
	for n := range r.Kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %10s %12s %12s\n",
		"txn", "commits", "commits/s", "aborts", "abort%", "mean-lat", "p99-lat")
	for _, n := range names {
		k := r.Kinds[n]
		fmt.Fprintf(&b, "%-16s %12d %12.0f %10d %9.1f%% %12v %12v\n",
			n, k.Commits, float64(k.Commits)/r.Duration.Seconds(), k.Aborts,
			k.AbortRatio()*100, k.MeanLatency().Round(time.Microsecond),
			k.Percentile(0.99).Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "%-16s %12d %12.0f\n", "TOTAL", r.TotalCommits(), r.Throughput())
	return b.String()
}
