package bench

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ermia/internal/engine"
	"ermia/internal/xrand"
)

func TestRunCountsOutcomes(t *testing.T) {
	userErr := errors.New("user abort")
	i := 0
	res := Run(Options{
		Workers:  1,
		Duration: 50 * time.Millisecond,
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			i++
			switch i % 4 {
			case 0:
				return "a", engine.ErrWriteConflict
			case 1:
				return "a", nil
			case 2:
				return "b", userErr
			default:
				return "b", nil
			}
		},
		IsUserAbort: func(err error) bool { return errors.Is(err, userErr) },
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	a, b := res.Kinds["a"], res.Kinds["b"]
	if a == nil || b == nil {
		t.Fatal("missing kinds")
	}
	if a.Commits == 0 || a.Aborts == 0 {
		t.Errorf("a: %+v", a)
	}
	if b.Commits == 0 || b.UserAborts == 0 {
		t.Errorf("b: commits=%d user=%d", b.Commits, b.UserAborts)
	}
	if a.Aborts > 0 && a.AbortRatio() <= 0 {
		t.Error("abort ratio zero despite aborts")
	}
	if res.Throughput() <= 0 {
		t.Error("throughput zero")
	}
}

func TestRunStopsOnFatalError(t *testing.T) {
	fatal := errors.New("boom")
	res := Run(Options{
		Workers:  2,
		Duration: 5 * time.Second, // must stop far earlier
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			return "x", fatal
		},
	})
	if !errors.Is(res.Err, fatal) {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestLatencyStats(t *testing.T) {
	res := Run(Options{
		Workers:  1,
		Duration: 30 * time.Millisecond,
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			time.Sleep(time.Millisecond)
			return "slow", nil
		},
	})
	k := res.Kinds["slow"]
	if k.MeanLatency() < 500*time.Microsecond {
		t.Errorf("mean latency %v implausible for 1ms sleeps", k.MeanLatency())
	}
	if k.MinLatency() == 0 || k.MaxLatency() < k.MinLatency() {
		t.Errorf("min=%v max=%v", k.MinLatency(), k.MaxLatency())
	}
	if p := k.Percentile(0.5); p == 0 {
		t.Error("p50 zero")
	}
	if k.Percentile(0.99) < k.Percentile(0.5) {
		t.Error("p99 < p50")
	}
}

func TestWarmupResetsCounters(t *testing.T) {
	var calls int
	res := Run(Options{
		Workers:        1,
		Duration:       60 * time.Millisecond,
		WarmupFraction: 0.5,
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			calls++
			return "x", nil
		},
	})
	if res.Kinds["x"].Commits >= uint64(calls) {
		t.Errorf("warmup not excluded: commits=%d calls=%d", res.Kinds["x"].Commits, calls)
	}
}

func TestTableRendering(t *testing.T) {
	res := Run(Options{
		Workers:  1,
		Duration: 10 * time.Millisecond,
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			return "t", nil
		},
	})
	s := res.Table()
	if !strings.Contains(s, "TOTAL") || !strings.Contains(s, "commits/s") {
		t.Errorf("table output:\n%s", s)
	}
}
