// The degradation sweep must reproduce from its seed alone: every fault
// point, workload choice, and audit outcome is a function of the Plan.
//
//ermia:deterministic
package bench

import (
	"errors"
	"fmt"
	"time"

	"ermia/internal/core"
	"ermia/internal/engine"
	"ermia/internal/faultfs"
	"ermia/internal/silo"
	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// The degradation sweep exercises the fault-containment contract end to end:
// a seeded workload runs against a fault-injected device through repeated
// inject → degrade → serve-reads → heal → reattach → write-again cycles, and
// every acknowledged commit must be readable while degraded and present
// after a final crash-recovery audit. It is the runtime analogue of the
// crash-point sweep: instead of killing the process at every I/O, it kills
// the device under a live engine and demands read service continue.

// DegradeTarget adapts one engine to the sweep. The closures absorb the
// engines' different config and report types.
type DegradeTarget struct {
	Name string
	// Open creates a fresh DB on the injected storage.
	Open func(st wal.Storage) (engine.DB, error)
	// Sync forces group commit (core WaitDurable, silo SyncLog).
	Sync func(db engine.DB) error
	// Health reports DB health.
	Health func(db engine.DB) engine.HealthStatus
	// Reattach re-attaches the log after the device heals.
	Reattach func(db engine.DB) error
	// Close shuts the DB down.
	Close func(db engine.DB) error
	// Recover reopens a DB from the durable crash image for the audit.
	Recover func(st wal.Storage) (engine.DB, error)
}

// CoreDegradeTarget adapts the ERMIA engine (SyncFlush mode, so group
// commit is driver-paced and the sweep is deterministic).
func CoreDegradeTarget() DegradeTarget {
	cfg := func(st wal.Storage) core.Config {
		return core.Config{WAL: wal.Config{
			SegmentSize: 16 << 10, BufferSize: 8 << 10, Storage: st, SyncFlush: true,
		}}
	}
	return DegradeTarget{
		Name:   EngERMIASI,
		Open:   func(st wal.Storage) (engine.DB, error) { return core.Open(cfg(st)) },
		Sync:   func(db engine.DB) error { return db.(*core.DB).WaitDurable() },
		Health: func(db engine.DB) engine.HealthStatus { return db.(*core.DB).Health() },
		Reattach: func(db engine.DB) error {
			rep, err := db.(*core.DB).Reattach(nil)
			if err == nil && rep.Lost != 0 {
				err = fmt.Errorf("reattach lost %d bytes from the durable window", rep.Lost)
			}
			return err
		},
		Close:   func(db engine.DB) error { return db.(*core.DB).Close() },
		Recover: func(st wal.Storage) (engine.DB, error) { return core.Recover(cfg(st)) },
	}
}

// SiloDegradeTarget adapts the Silo engine (long epoch interval, so group
// commit is driver-paced via SyncLog).
func SiloDegradeTarget() DegradeTarget {
	cfg := func(st wal.Storage) silo.Config {
		return silo.Config{Storage: st, EpochInterval: time.Hour}
	}
	return DegradeTarget{
		Name:   EngSilo,
		Open:   func(st wal.Storage) (engine.DB, error) { return silo.Open(cfg(st)) },
		Sync:   func(db engine.DB) error { return db.(*silo.DB).SyncLog() },
		Health: func(db engine.DB) engine.HealthStatus { return db.(*silo.DB).Health() },
		Reattach: func(db engine.DB) error {
			_, err := db.(*silo.DB).Reattach(nil)
			return err
		},
		Close:   func(db engine.DB) error { return db.(*silo.DB).Close() },
		Recover: func(st wal.Storage) (engine.DB, error) { return silo.Recover(cfg(st)) },
	}
}

// DegradeTargets is the standard two-engine comparison set.
func DegradeTargets() []DegradeTarget {
	return []DegradeTarget{CoreDegradeTarget(), SiloDegradeTarget()}
}

// DegradeOptions scales the sweep. Zero values select defaults.
type DegradeOptions struct {
	Cycles         int    // inject→heal cycles (default 3)
	WritesPerPhase int    // writes in each healthy/degraded/healed phase (default 16)
	ReadsPerPhase  int    // reads served while degraded (default 32)
	Keys           int    // key-space size (default 64)
	Seed           uint64 // workload seed; a run reproduces from it alone
}

func (o *DegradeOptions) setDefaults() {
	if o.Cycles == 0 {
		o.Cycles = 3
	}
	if o.WritesPerPhase == 0 {
		o.WritesPerPhase = 16
	}
	if o.ReadsPerPhase == 0 {
		o.ReadsPerPhase = 32
	}
	if o.Keys == 0 {
		o.Keys = 64
	}
}

// DegradeResult counts what the sweep observed.
type DegradeResult struct {
	Cycles        int
	Committed     int // acknowledged committed write transactions
	RefusedWrites int // writes refused with ErrReadOnlyDegraded
	DegradedReads int // reads served, and verified, while degraded
	Audited       int // keys verified by the final crash-recovery audit
}

// DegradeSweep runs the cycle workload against one engine and returns the
// first invariant violation as an error: an acknowledged commit that is
// unreadable while degraded, a write not refused while degraded, a health
// state out of step with the device, or a key missing after recovery.
func DegradeSweep(tgt DegradeTarget, opts DegradeOptions) (DegradeResult, error) {
	opts.setDefaults()
	var res DegradeResult
	rng := xrand.New2(opts.Seed, 0xDE64)

	inner := wal.NewMemStorage()
	inj := faultfs.NewInjector(inner, faultfs.Plan{})
	db, err := tgt.Open(inj)
	if err != nil {
		return res, fmt.Errorf("%s: open: %w", tgt.Name, err)
	}
	defer tgt.Close(db)
	tbl := db.CreateTable("kv")

	// model holds every acknowledged committed write; keys orders it so the
	// sweep replays deterministically from the seed.
	model := map[string]string{}
	var keys []string
	seq := 0
	writeOne := func() error {
		k := fmt.Sprintf("k%03d", rng.Intn(opts.Keys))
		seq++
		v := fmt.Sprintf("v%d", seq)
		txn := db.Begin(0)
		err := txn.Update(tbl, []byte(k), []byte(v))
		if errors.Is(err, engine.ErrNotFound) {
			err = txn.Insert(tbl, []byte(k), []byte(v))
		}
		if err == nil {
			err = txn.Commit()
		} else {
			txn.Abort()
		}
		if err != nil {
			return err
		}
		if _, seen := model[k]; !seen {
			keys = append(keys, k)
		}
		model[k] = v
		res.Committed++
		return nil
	}
	readOne := func(ctx string) error {
		if len(keys) == 0 {
			return nil
		}
		k := keys[rng.Intn(len(keys))]
		txn := db.BeginReadOnly(0)
		v, err := txn.Get(tbl, []byte(k))
		if err != nil || string(v) != model[k] {
			txn.Abort()
			return fmt.Errorf("%s: %s read %s = %q, %v (want %q)", tgt.Name, ctx, k, v, err, model[k])
		}
		if err := txn.Commit(); err != nil {
			return fmt.Errorf("%s: %s read-only commit: %w", tgt.Name, ctx, err)
		}
		return nil
	}

	for cycle := 0; cycle < opts.Cycles; cycle++ {
		res.Cycles++
		// Healthy phase: writes commit and become durable.
		for i := 0; i < opts.WritesPerPhase; i++ {
			if err := writeOne(); err != nil {
				return res, fmt.Errorf("%s: cycle %d healthy write: %w", tgt.Name, cycle, err)
			}
		}
		if err := tgt.Sync(db); err != nil {
			return res, fmt.Errorf("%s: cycle %d sync: %w", tgt.Name, cycle, err)
		}
		if h := tgt.Health(db); h.State != engine.Healthy {
			return res, fmt.Errorf("%s: cycle %d health = %v, want healthy", tgt.Name, cycle, h)
		}

		// Kill the device and drive until the engine notices. A commit
		// acknowledged in this window is still in the model: the engine
		// buffered it (ring or pending list) and owes it to Reattach.
		inj.SetFailOp(inj.OpCount() + 1)
		degraded := false
		for tries := 0; tries < 64 && !degraded; tries++ {
			err := writeOne()
			switch {
			case err == nil:
			case errors.Is(err, engine.ErrReadOnlyDegraded):
				degraded = true
			default:
				return res, fmt.Errorf("%s: cycle %d write on dying device: %w", tgt.Name, cycle, err)
			}
			if tgt.Health(db).State == engine.Degraded {
				degraded = true
			} else if !degraded {
				if err := tgt.Sync(db); err != nil {
					if h := tgt.Health(db); h.State != engine.Degraded {
						return res, fmt.Errorf("%s: cycle %d sync failed (%v) without degrading: %v", tgt.Name, cycle, err, h)
					}
					degraded = true
				}
			}
		}
		if !degraded {
			return res, fmt.Errorf("%s: cycle %d: device killed but DB never degraded", tgt.Name, cycle)
		}

		// Degraded phase: reads are served from memory and verified against
		// the model; writes are refused with the typed error.
		for i := 0; i < opts.ReadsPerPhase; i++ {
			if err := readOne("degraded"); err != nil {
				return res, err
			}
			res.DegradedReads++
		}
		for i := 0; i < opts.WritesPerPhase; i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(opts.Keys))
			txn := db.Begin(0)
			err := txn.Update(tbl, []byte(k), []byte("refused"))
			if errors.Is(err, engine.ErrNotFound) {
				err = txn.Insert(tbl, []byte(k), []byte("refused"))
			}
			if err == nil {
				err = txn.Commit()
			} else {
				txn.Abort()
			}
			if !errors.Is(err, engine.ErrReadOnlyDegraded) {
				return res, fmt.Errorf("%s: cycle %d degraded write = %v, want ErrReadOnlyDegraded", tgt.Name, cycle, err)
			}
			res.RefusedWrites++
		}

		// Heal and re-attach: full service returns.
		inj.Heal()
		if err := tgt.Reattach(db); err != nil {
			return res, fmt.Errorf("%s: cycle %d reattach: %w", tgt.Name, cycle, err)
		}
		if h := tgt.Health(db); h.State != engine.Healthy {
			return res, fmt.Errorf("%s: cycle %d health after reattach = %v", tgt.Name, cycle, h)
		}
		for i := 0; i < opts.WritesPerPhase; i++ {
			if err := writeOne(); err != nil {
				return res, fmt.Errorf("%s: cycle %d healed write: %w", tgt.Name, cycle, err)
			}
		}
		if err := tgt.Sync(db); err != nil {
			return res, fmt.Errorf("%s: cycle %d healed sync: %w", tgt.Name, cycle, err)
		}
	}

	// Audit: crash, recover from the durable image, and demand every
	// acknowledged commit — the committed prefix — be present and current.
	if err := tgt.Close(db); err != nil {
		return res, fmt.Errorf("%s: close: %w", tgt.Name, err)
	}
	rdb, err := tgt.Recover(inner.Crash())
	if err != nil {
		return res, fmt.Errorf("%s: audit recovery: %w", tgt.Name, err)
	}
	defer tgt.Close(rdb)
	rtbl := rdb.OpenTable("kv")
	if rtbl == nil {
		return res, fmt.Errorf("%s: audit: table missing after recovery", tgt.Name)
	}
	txn := rdb.BeginReadOnly(0)
	defer txn.Abort()
	for _, k := range keys {
		v, err := txn.Get(rtbl, []byte(k))
		if err != nil || string(v) != model[k] {
			return res, fmt.Errorf("%s: audit: %s = %q, %v (want %q): acknowledged commit lost", tgt.Name, k, v, err, model[k])
		}
		res.Audited++
	}
	return res, nil
}
