package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"ermia/internal/core"
	"ermia/internal/engine"
	"ermia/internal/repl"
	"ermia/internal/server"
	"ermia/internal/wal"
)

// The checkpoint experiment quantifies the two claims the checkpoint
// subsystem makes:
//
//  1. Recovery time is bounded by data size, not log history. The same
//     row set is overwritten round after round, so the data stays constant
//     while the log grows; recovery time grows with it — until a
//     checkpoint + truncation collapses the replayable suffix back to
//     data-size proportions.
//  2. A checkpoint-seeded replica reaches the primary's watermark mirroring
//     strictly fewer log bytes than a replica that ships the log from its
//     start, paying a one-time image download instead.

// CkptRecoveryPoint is one recovery measurement of the history-growth phase.
type CkptRecoveryPoint struct {
	Round         int    `json:"round"`
	LogBytes      uint64 `json:"log_bytes"`
	RecoverMicros int64  `json:"recover_us"`
}

// CkptBootstrap compares a from-scratch replica bootstrap with a
// checkpoint-seeded one against the same primary state.
type CkptBootstrap struct {
	ScratchLogBytes      uint64 `json:"scratch_log_bytes"`
	ScratchCatchupMicros int64  `json:"scratch_catchup_us"`
	SeededLogBytes       uint64 `json:"seeded_log_bytes"`
	SeedImageBytes       uint64 `json:"seed_image_bytes"`
	SeededCatchupMicros  int64  `json:"seeded_catchup_us"`
}

// CkptBenchReport is the machine-readable output of the checkpoint
// experiment (written to Params.JSONPath as BENCH_ckpt.json).
type CkptBenchReport struct {
	Benchmark string `json:"benchmark"` // "checkpoint"
	Engine    string `json:"engine"`
	Rows      int    `json:"rows"`

	// Recovery-time phase: one point per overwrite round, then the state
	// after checkpoint + truncation of the final round's log.
	Points        []CkptRecoveryPoint `json:"points"`
	AfterTruncate CkptRecoveryPoint   `json:"after_truncate"`
	SegmentsFreed int                 `json:"segments_freed"`

	Bootstrap CkptBootstrap `json:"bootstrap"`
}

// ckptBenchCfg: segments small enough that every phase seals several, so
// truncation has something to unlink.
func ckptBenchCfg(st wal.Storage) core.Config {
	return core.Config{WAL: wal.Config{SegmentSize: 256 << 10, BufferSize: 64 << 10, Storage: st}}
}

// storageLogBytes sums the sizes of the log segment files in st.
func storageLogBytes(st wal.Storage) (uint64, error) {
	names, err := st.List()
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, n := range names {
		if !strings.HasPrefix(n, "log-") {
			continue
		}
		f, err := st.Open(n)
		if err != nil {
			return 0, err
		}
		size, err := f.Size()
		f.Close()
		if err != nil {
			return 0, err
		}
		total += uint64(size)
	}
	return total, nil
}

// ckptOverwrite upserts rows r0..r(n-1), eight per transaction.
func ckptOverwrite(db *core.DB, tbl engine.Table, round, n int) error {
	value := []byte(fmt.Sprintf("round-%03d-", round) + strings.Repeat("v", 90))
	for i := 0; i < n; {
		txn := db.BeginTxn(0)
		for j := 0; j < 8 && i < n; j, i = j+1, i+1 {
			key := []byte(fmt.Sprintf("r%08d", i))
			var err error
			if round == 0 {
				err = txn.Insert(tbl, key, value)
			} else {
				err = txn.Update(tbl, key, value)
			}
			if err != nil {
				txn.Abort()
				return err
			}
		}
		if err := txn.Commit(); err != nil {
			return err
		}
	}
	return db.WaitDurable()
}

// timedRecover recovers a DB from dir-backed storage and returns the elapsed
// wall time; the DB is closed again immediately.
func timedRecover(dir string) (time.Duration, error) {
	st, err := wal.NewDirStorage(dir)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	db, err := core.Recover(ckptBenchCfg(st))
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	db.Close()
	return elapsed, nil
}

// ckptRecoveryPhase measures recovery time as the log grows over rounds of
// overwrites of a constant row set, then after checkpoint + truncation.
func (p *Params) ckptRecoveryPhase(dir string, rows, rounds int, report *CkptBenchReport) error {
	for round := 0; round < rounds; round++ {
		st, err := wal.NewDirStorage(dir)
		if err != nil {
			return err
		}
		var db *core.DB
		if round == 0 {
			db, err = core.Open(ckptBenchCfg(st))
		} else {
			db, err = core.Recover(ckptBenchCfg(st))
		}
		if err != nil {
			return err
		}
		tbl := db.OpenTable("bench")
		if tbl == nil {
			tbl = db.CreateTable("bench")
		}
		if err := ckptOverwrite(db, tbl, round, rows); err != nil {
			db.Close()
			return err
		}
		db.Close()

		st2, err := wal.NewDirStorage(dir)
		if err != nil {
			return err
		}
		logBytes, err := storageLogBytes(st2)
		if err != nil {
			return err
		}
		elapsed, err := timedRecover(dir)
		if err != nil {
			return err
		}
		pt := CkptRecoveryPoint{Round: round, LogBytes: logBytes, RecoverMicros: elapsed.Microseconds()}
		report.Points = append(report.Points, pt)
		p.printf("%-10d %14d %14d\n", pt.Round, pt.LogBytes, pt.RecoverMicros)
	}

	// Checkpoint + truncate the accumulated history, then measure again: the
	// replayable suffix is now proportional to the data, not the history.
	st, err := wal.NewDirStorage(dir)
	if err != nil {
		return err
	}
	db, err := core.Recover(ckptBenchCfg(st))
	if err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return err
	}
	removed, err := db.TruncateLog()
	if err != nil {
		db.Close()
		return err
	}
	db.Close()
	report.SegmentsFreed = len(removed)

	st2, err := wal.NewDirStorage(dir)
	if err != nil {
		return err
	}
	logBytes, err := storageLogBytes(st2)
	if err != nil {
		return err
	}
	elapsed, err := timedRecover(dir)
	if err != nil {
		return err
	}
	report.AfterTruncate = CkptRecoveryPoint{Round: rounds, LogBytes: logBytes, RecoverMicros: elapsed.Microseconds()}
	p.printf("%-10s %14d %14d   (%d segments freed)\n",
		"truncated", logBytes, report.AfterTruncate.RecoverMicros, len(removed))
	return nil
}

// ckptBootstrapPhase compares replica bootstrap costs against one primary:
// a scratch replica mirrors the full log; after checkpoint + truncation a
// second replica seeds from the image and mirrors only the suffix.
func (p *Params) ckptBootstrapPhase(dir string, rows int, report *CkptBenchReport) error {
	primarySt, err := wal.NewDirStorage(dir + "/primary")
	if err != nil {
		return err
	}
	db, err := core.Open(ckptBenchCfg(primarySt))
	if err != nil {
		return err
	}
	defer db.Close()
	srv, err := server.New(server.Config{DB: db})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	tbl := db.CreateTable("bench")
	if err := ckptOverwrite(db, tbl, 0, rows); err != nil {
		return err
	}

	startReplica := func(subdir string) (*repl.Replica, error) {
		st, err := wal.NewDirStorage(dir + "/" + subdir)
		if err != nil {
			return nil, err
		}
		return repl.Start(repl.Config{
			PrimaryAddr:    addr,
			ReconnectDelay: 10 * time.Millisecond,
			Core:           core.Config{WAL: wal.Config{Storage: st}},
		})
	}
	catchup := func(r *repl.Replica) (time.Duration, error) {
		start := time.Now()
		target := db.DurableOffset()
		for r.Watermark() < target {
			if err := r.Err(); err != nil {
				return 0, fmt.Errorf("replica stream failed: %w", err)
			}
			if time.Since(start) > 60*time.Second {
				return 0, fmt.Errorf("replica never caught up: watermark %#x, durable %#x", r.Watermark(), target)
			}
			time.Sleep(time.Millisecond)
		}
		return time.Since(start), nil
	}

	scratch, err := startReplica("scratch")
	if err != nil {
		return err
	}
	defer scratch.Close()
	elapsed, err := catchup(scratch)
	if err != nil {
		return err
	}
	ss := scratch.Stats()
	report.Bootstrap.ScratchLogBytes = ss.Bytes
	report.Bootstrap.ScratchCatchupMicros = elapsed.Microseconds()

	if err := db.Checkpoint(); err != nil {
		return err
	}
	if _, err := db.TruncateLog(); err != nil {
		return err
	}
	// A short tail of fresh writes past the checkpoint, so the seeded
	// replica has a real log suffix to mirror.
	if err := ckptOverwrite(db, tbl, 1, rows/10); err != nil {
		return err
	}
	if elapsed, err = catchup(scratch); err != nil {
		return err
	}

	seeded, err := startReplica("seeded")
	if err != nil {
		return err
	}
	defer seeded.Close()
	if elapsed, err = catchup(seeded); err != nil {
		return err
	}
	rs := seeded.Stats()
	if rs.Seeds == 0 {
		return fmt.Errorf("bench: seeded replica bootstrapped without a checkpoint seed")
	}
	if rs.Bytes >= report.Bootstrap.ScratchLogBytes {
		return fmt.Errorf("bench: seeded replica mirrored %d log bytes, scratch mirrored %d; seeding must read strictly less",
			rs.Bytes, report.Bootstrap.ScratchLogBytes)
	}
	report.Bootstrap.SeededLogBytes = rs.Bytes
	report.Bootstrap.SeedImageBytes = rs.SeedBytes
	report.Bootstrap.SeededCatchupMicros = elapsed.Microseconds()

	b := report.Bootstrap
	p.printf("%-10s %14d %14d\n", "scratch", b.ScratchLogBytes, b.ScratchCatchupMicros)
	p.printf("%-10s %14d %14d   (image %dB)\n", "seeded", b.SeededLogBytes, b.SeededCatchupMicros, b.SeedImageBytes)
	return nil
}

// CkptBench is the checkpoint/truncation experiment; see the file comment.
func CkptBench(p Params) error {
	p.setDefaults()
	rows := p.MicroRows
	rounds := 3
	if p.Full {
		rounds = 5
	}

	base, err := os.MkdirTemp("", "ermia-ckptbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	report := CkptBenchReport{Benchmark: "checkpoint", Engine: EngERMIASI, Rows: rows}

	p.printf("# recovery time vs log history (%d rows overwritten per round)\n", rows)
	p.printf("%-10s %14s %14s\n", "round", "log-bytes", "recover(us)")
	if err := p.ckptRecoveryPhase(base+"/recovery", rows, rounds, &report); err != nil {
		return fmt.Errorf("bench: ckpt recovery phase: %w", err)
	}

	p.printf("# replica bootstrap: scratch mirror vs checkpoint seed\n")
	p.printf("%-10s %14s %14s\n", "replica", "log-bytes", "catchup(us)")
	if err := p.ckptBootstrapPhase(base+"/bootstrap", rows, &report); err != nil {
		return fmt.Errorf("bench: ckpt bootstrap phase: %w", err)
	}

	last := report.Points[len(report.Points)-1]
	p.printf("# recovery after truncation: %dus over %dB of log (vs %dus over %dB untruncated)\n",
		report.AfterTruncate.RecoverMicros, report.AfterTruncate.LogBytes,
		last.RecoverMicros, last.LogBytes)

	if p.JSONPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		p.printf("# wrote %s\n", p.JSONPath)
	}
	return nil
}
