package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"ermia/internal/nemesis"
)

// ChaosPoint is one nemesis run: the seed, what its fault schedule did to
// the cluster, and what the retrying workload still got through.
type ChaosPoint struct {
	Seed       uint64  `json:"seed"`
	Acked      int     `json:"acked_commits"`
	Attempts   int     `json:"attempts"`
	Reads      int     `json:"snapshot_reads"`
	Promotions int     `json:"promotions"`
	Crashes    int     `json:"primary_crashes"`
	Faults     int     `json:"scheduled_faults"`
	AckedPerS  float64 `json:"acked_per_sec"`
	// Goodput is acked/attempts — the fraction of transaction executions
	// that survived to an acknowledgment despite cuts, partitions, and
	// failovers (retries burn the rest).
	Goodput float64 `json:"goodput"`
}

// ChaosBenchReport is the machine-readable output of the chaos experiment
// (written to Params.JSONPath as BENCH_chaos.json).
type ChaosBenchReport struct {
	Benchmark  string       `json:"benchmark"` // "network-chaos"
	Engine     string       `json:"engine"`
	DurationMS int64        `json:"duration_ms_per_seed"`
	Points     []ChaosPoint `json:"points"`
	Violations []string     `json:"violations,omitempty"`
}

// ChaosBench measures availability under the nemesis fault schedule: a
// primary + replica cluster on the fault-injecting transport, a retrying
// client workload, and per-seed partitions, crashes, and supervised
// promotions. The headline is goodput (acked commits per attempt) and acked
// throughput per second of chaos; any invariant violation fails the
// experiment outright, because a benchmark of a broken database measures
// nothing.
func ChaosBench(p Params) error {
	p.setDefaults()
	dur := p.Duration
	seeds := []uint64{1, 2, 3, 4, 5}
	if p.Full {
		seeds = make([]uint64, 20)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
	}

	report := ChaosBenchReport{
		Benchmark:  "network-chaos",
		Engine:     EngERMIASI,
		DurationMS: dur.Milliseconds(),
	}
	p.printf("# nemesis chaos: %d seeds x %v (partitions, cuts, crashes, failovers)\n", len(seeds), dur)
	p.printf("%-8s %10s %10s %8s %6s %6s %12s %8s\n",
		"seed", "acked", "attempts", "goodput", "promo", "crash", "acked/s", "faults")
	for _, seed := range seeds {
		res, err := nemesis.Run(nemesis.Config{Seed: seed, Duration: dur})
		if err != nil {
			return fmt.Errorf("bench: chaos seed %d: %w", seed, err)
		}
		report.Violations = append(report.Violations, res.Violations...)
		pt := ChaosPoint{
			Seed:       seed,
			Acked:      res.Acked,
			Attempts:   res.Attempts,
			Reads:      res.Reads,
			Promotions: res.Promotions,
			Crashes:    res.Crashes,
			Faults:     len(res.Schedule),
			AckedPerS:  float64(res.Acked) / dur.Seconds(),
		}
		if res.Attempts > 0 {
			pt.Goodput = float64(res.Acked) / float64(res.Attempts)
		}
		report.Points = append(report.Points, pt)
		p.printf("%-8d %10d %10d %8.3f %6d %6d %12.0f %8d\n",
			seed, pt.Acked, pt.Attempts, pt.Goodput, pt.Promotions, pt.Crashes, pt.AckedPerS, pt.Faults)
	}
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			p.printf("# VIOLATION: %s\n", v)
		}
		return fmt.Errorf("bench: chaos found %d invariant violations", len(report.Violations))
	}

	if p.JSONPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		p.printf("# wrote %s\n", p.JSONPath)
	}
	return nil
}
