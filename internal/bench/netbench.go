package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"

	"ermia/internal/client"
	"ermia/internal/core"
	"ermia/internal/server"
	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// ServerPoint is one cell of the network throughput grid: a durability
// mode at a (connections × pipelining depth) load level.
type ServerPoint struct {
	Mode      string  `json:"mode"`    // "group" or "percommit"
	Clients   int     `json:"clients"` // TCP connections
	Depth     int     `json:"depth"`   // concurrent transactions per connection
	TxnPerSec float64 `json:"txn_per_sec"`
	P50Micros int64   `json:"p50_us"`
	P99Micros int64   `json:"p99_us"`
	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	// Batches is how many WaitDurable wakeups the group committer used for
	// Commits acknowledgments (0 in percommit mode, which pays one device
	// sync per commit by construction).
	Batches uint64 `json:"group_batches,omitempty"`
}

// ServerBenchReport is the machine-readable output of the server experiment
// (written to Params.JSONPath as BENCH_server.json).
type ServerBenchReport struct {
	Benchmark  string        `json:"benchmark"` // "network-server"
	Engine     string        `json:"engine"`
	Storage    string        `json:"storage"` // "dir" (file-backed)
	DurationMS int64         `json:"duration_ms_per_point"`
	Points     []ServerPoint `json:"points"`
	// SpeedupMax is the best group/percommit throughput ratio observed at
	// matching load levels — the amortization headline.
	SpeedupMax float64 `json:"group_speedup_max"`
}

// serverPoint runs one grid cell: a fresh file-backed engine behind a fresh
// server, hammered by clients×depth workers doing single-insert commits on
// disjoint keys (no CC conflicts, so the commit/durability path dominates).
func (p *Params) serverPoint(dir string, mode server.Durability, clients, depth int) (ServerPoint, error) {
	pt := ServerPoint{Mode: mode.String(), Clients: clients, Depth: depth}
	st, err := wal.NewDirStorage(dir)
	if err != nil {
		return pt, err
	}
	db, err := core.Open(core.Config{
		WAL: wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20, Storage: st},
	})
	if err != nil {
		return pt, err
	}
	defer db.Close()

	workers := clients * depth
	srv, err := server.New(server.Config{DB: db, Durability: mode, Workers: workers + 1, MaxConns: clients + 1})
	if err != nil {
		return pt, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	go srv.Serve(ln)

	c, err := client.Dial(client.Options{Addr: ln.Addr().String(), PoolSize: clients})
	if err != nil {
		return pt, err
	}
	defer c.Close()
	tbl := c.CreateTable("bench")
	value := make([]byte, 100)

	// Workers are pinned worker→connection worker%clients, so each
	// connection carries exactly depth concurrent transactions: that is the
	// pipelining level the point is measuring.
	seq := make([]uint64, workers)
	res := Run(Options{
		Workers:  workers,
		Duration: p.Duration,
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			seq[worker]++
			key := fmt.Sprintf("w%03d-%012d", worker, seq[worker])
			txn := c.Begin(worker)
			if err := txn.Insert(tbl, []byte(key), value); err != nil {
				txn.Abort()
				return "insert", err
			}
			return "insert", txn.Commit()
		},
	})
	if res.Err != nil {
		return pt, res.Err
	}
	ks := res.Kinds["insert"]
	pt.TxnPerSec = res.Throughput()
	pt.P50Micros = ks.Percentile(0.5).Microseconds()
	pt.P99Micros = ks.Percentile(0.99).Microseconds()
	pt.Commits = ks.Commits
	pt.Aborts = ks.Aborts
	if mode == server.DurabilityGroup {
		pt.Batches = srv.Stats().GroupBatches
	}
	return pt, nil
}

// ServerBench is the network service layer experiment: cross-connection
// group commit versus the naive one-device-sync-per-commit baseline, over
// loopback TCP with file-backed storage, across a grid of connection counts
// and pipelining depths. Group commit's throughput advantage grows with
// load because one WaitDurable wakeup acknowledges every commit that
// arrived during the previous device sync.
func ServerBench(p Params) error {
	p.setDefaults()
	clientGrid := []int{1, 4, 8}
	depthGrid := []int{1, 4}
	if p.Full {
		clientGrid = []int{1, 4, 8, 16}
		depthGrid = []int{1, 4, 16}
	}

	base, err := os.MkdirTemp("", "ermia-netbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	report := ServerBenchReport{
		Benchmark:  "network-server",
		Engine:     EngERMIASI,
		Storage:    "dir",
		DurationMS: p.Duration.Milliseconds(),
	}
	perCommit := map[[2]int]float64{}

	p.printf("%-10s %8s %6s %12s %10s %10s\n",
		"mode", "clients", "depth", "txn/s", "p50(us)", "p99(us)")
	for i, mode := range []server.Durability{server.DurabilityPerCommit, server.DurabilityGroup} {
		for _, clients := range clientGrid {
			for _, depth := range depthGrid {
				dir := fmt.Sprintf("%s/point-%d-%d-%d", base, i, clients, depth)
				pt, err := p.serverPoint(dir, mode, clients, depth)
				if err != nil {
					return fmt.Errorf("bench: server %s c=%d d=%d: %w", mode, clients, depth, err)
				}
				report.Points = append(report.Points, pt)
				p.printf("%-10s %8d %6d %12.0f %10d %10d\n",
					pt.Mode, pt.Clients, pt.Depth, pt.TxnPerSec, pt.P50Micros, pt.P99Micros)
				if mode == server.DurabilityPerCommit {
					perCommit[[2]int{clients, depth}] = pt.TxnPerSec
				} else if naive := perCommit[[2]int{clients, depth}]; naive > 0 {
					if s := pt.TxnPerSec / naive; s > report.SpeedupMax {
						report.SpeedupMax = s
					}
				}
			}
		}
	}
	p.printf("# group commit best speedup over per-commit sync: %.2fx\n", report.SpeedupMax)

	if p.JSONPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		p.printf("# wrote %s\n", p.JSONPath)
	}
	return nil
}
