package bench

import (
	"strings"
	"testing"
	"time"
)

// TestExperimentsSmoke runs every experiment at a tiny scale, asserting it
// completes and produces its table. This exercises the full harness (all
// three engines, every workload, every sweep) end to end; skipped under
// -short because the loads dominate.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, name := range ExperimentOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			params := Params{
				Threads:   2,
				Duration:  150 * time.Millisecond,
				Items:     1000,
				Customers: 60,
				MicroRows: 3000,
				Out:       &sb,
			}
			if err := Experiments[name](params); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := sb.String()
			if !strings.Contains(out, "#") || len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("%s produced no table:\n%s", name, out)
			}
		})
	}
}

func TestOpenEngineNames(t *testing.T) {
	for _, name := range AllEngines {
		db, err := OpenEngine(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		db.Close()
	}
	if _, err := OpenEngine("bogus"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestParamsDefaults(t *testing.T) {
	var p Params
	p.setDefaults()
	if p.Threads == 0 || p.Duration == 0 || p.Items == 0 || p.MicroRows == 0 || p.Customers == 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	full := Params{Full: true}
	full.setDefaults()
	if full.Threads != 24 || full.Items != 100000 {
		t.Fatalf("full defaults: %+v", full)
	}
}
