package bench

import (
	"encoding/json"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ermia/internal/core"
	"ermia/internal/server"
	"ermia/internal/shard"
	"ermia/internal/tpcc"
	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// ShardPoint is one cell of the sharding experiment: a shard count at a
// cross-partition percentage, running TPC-C through the shard router.
type ShardPoint struct {
	Shards    int     `json:"shards"`
	RemotePct int     `json:"remote_pct"` // cross-partition probability (both knobs)
	TxnPerSec float64 `json:"txn_per_sec"`
	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	// FastCommits/CrossCommits split the router's committed read-write
	// transactions by path: single-shard fast path vs two-phase commit.
	FastCommits  uint64  `json:"fast_commits"`
	CrossCommits uint64  `json:"cross_commits"`
	CrossRatio   float64 `json:"cross_ratio"`
}

// ShardBenchReport is the machine-readable output of the shard experiment
// (BENCH_shard.json).
type ShardBenchReport struct {
	Benchmark  string       `json:"benchmark"` // "shard-tpcc"
	Engine     string       `json:"engine"`
	Warehouses int          `json:"warehouses"`
	Threads    int          `json:"threads"`
	DurationMS int64        `json:"duration_ms_per_point"`
	Points     []ShardPoint `json:"points"`
	// LocalSpeedup is throughput(3 shards) / throughput(1 shard) on the
	// fully partition-local mix — the horizontal-scaling headline. Each
	// shard runs synchronous per-commit durability against its own
	// bandwidth-limited commit device, so per-shard capacity is fixed and
	// the ratio isolates what sharding itself buys: more shards means
	// more commit devices working in parallel.
	LocalSpeedup float64 `json:"local_speedup_3shard"`
	// DeviceKBPerSec is the modeled commit-device sync bandwidth.
	DeviceKBPerSec int64 `json:"device_kb_per_sec"`
}

// tpccShardRules is the TPC-C placement policy: every warehouse-scoped
// table keys on a big-endian warehouse id in its first four bytes, so a
// 4-byte prefix hash co-locates a whole warehouse (making home-warehouse
// transactions single-shard); the read-mostly ITEM and SUPPLIER catalogs
// are replicated to every shard so NewOrder's item lookups never leave the
// transaction's home shard.
func tpccShardRules() []shard.TableRule {
	rules := []shard.TableRule{
		{Table: tpcc.TableItem, Replicated: true},
		{Table: tpcc.TableSupplier, Replicated: true},
	}
	for _, t := range []string{
		tpcc.TableWarehouse, tpcc.TableDistrict, tpcc.TableCustomer,
		tpcc.TableCustName, tpcc.TableHistory, tpcc.TableNewOrder,
		tpcc.TableOrder, tpcc.TableOrderCust, tpcc.TableOrderLine,
		tpcc.TableStock,
	} {
		rules = append(rules, shard.TableRule{Table: t, PrefixLen: 4})
	}
	return rules
}

// balancedWarehouses picks the smallest warehouse count >= min whose hash
// placement over `shards` shards is balanced (per-shard counts within one
// of each other), so every shard carries load and the scaling measurement
// is not at the mercy of an unlucky hash draw. Placement is a pure
// function of the counts, so the choice is deterministic.
func balancedWarehouses(min, shards int) int {
	if shards <= 1 {
		return min
	}
	rule := shard.TableRule{PrefixLen: 4}
	for w := min; w < min+64; w++ {
		m := &shard.Map{Version: 1}
		for i := 0; i < shards; i++ {
			m.Shards = append(m.Shards, shard.ShardInfo{Addr: "x"})
		}
		counts := make([]int, shards)
		for id := 1; id <= w; id++ {
			counts[m.ShardOf(rule, tpcc.WarehouseKey(id))]++
		}
		lo, hi := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if lo > 0 && hi-lo <= 1 {
			return w
		}
	}
	return min
}

// syncDelayStorage models each shard owning its own commit device: an
// in-memory storage whose Sync occupies the device, one sync at a time,
// for a wall-clock interval proportional to the bytes written since the
// previous sync — a bandwidth-limited device. Running the servers in
// per-commit durability against it caps a shard's commit rate at
// bandwidth / log-bytes-per-transaction, a capacity limit that lives
// off-CPU, so adding shards adds commit devices and throughput scales
// with the shard count even on a single-core host. Charging by bytes
// (rather than a flat per-sync cost) keeps the model batch-neutral: a
// sync covering ten queued commits costs ten commits' worth of device
// time, so per-shard capacity does not depend on how many clients happen
// to share a device. The rate starts at zero so the data load runs at
// memory speed; setRate arms it before measurement.
type syncDelayStorage struct {
	*wal.MemStorage
	device  sync.Mutex   // held for the duration of each delayed sync
	nsPerKB atomic.Int64 // device service time per KiB synced; 0 disables
	pending atomic.Int64 // bytes written since the last sync
}

func newSyncDelayStorage() *syncDelayStorage {
	return &syncDelayStorage{MemStorage: wal.NewMemStorage()}
}

func (s *syncDelayStorage) setRate(nsPerKB int64) { s.nsPerKB.Store(nsPerKB) }

// Create implements wal.Storage.
func (s *syncDelayStorage) Create(name string) (wal.File, error) {
	f, err := s.MemStorage.Create(name)
	if err != nil {
		return nil, err
	}
	return &syncDelayFile{File: f, s: s}, nil
}

// Open implements wal.Storage.
func (s *syncDelayStorage) Open(name string) (wal.File, error) {
	f, err := s.MemStorage.Open(name)
	if err != nil {
		return nil, err
	}
	return &syncDelayFile{File: f, s: s}, nil
}

type syncDelayFile struct {
	wal.File
	s *syncDelayStorage
}

// WriteAt counts bytes toward the next sync's device charge.
func (f *syncDelayFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.File.WriteAt(p, off)
	if n > 0 && f.s.nsPerKB.Load() > 0 {
		f.s.pending.Add(int64(n))
	}
	return n, err
}

// Sync holds the device in proportion to the unsynced bytes before
// persisting. The mutex is the point: concurrent syncs queue rather than
// overlap, so the delay is a shared per-device service time, not a
// per-caller sleep.
func (f *syncDelayFile) Sync() error {
	if rate := f.s.nsPerKB.Load(); rate > 0 {
		if n := f.s.pending.Swap(0); n > 0 {
			f.s.device.Lock()
			time.Sleep(time.Duration(n * rate / 1024))
			f.s.device.Unlock()
		}
	}
	return f.File.Sync()
}

// shardCluster is a self-contained N-shard deployment on loopback:
// in-memory engines, one server per shard, and a router over them.
type shardCluster struct {
	router *shard.Router
	srvs   []*server.Server
	dbs    []*core.DB
	sts    []*syncDelayStorage
}

func (c *shardCluster) close() {
	if c.router != nil {
		c.router.Close()
	}
	for _, s := range c.srvs {
		s.Close()
	}
	for _, db := range c.dbs {
		db.Close()
	}
}

func startShardCluster(shards, workers int) (*shardCluster, error) {
	cl := &shardCluster{}
	m := &shard.Map{Version: 1, Rules: tpccShardRules()}
	lns := make([]net.Listener, shards)
	for i := 0; i < shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cl.close()
			return nil, err
		}
		lns[i] = ln
		m.Shards = append(m.Shards, shard.ShardInfo{Addr: ln.Addr().String()})
	}
	blob := m.EncodeBinary()
	for i, ln := range lns {
		st := newSyncDelayStorage()
		cl.sts = append(cl.sts, st)
		db, err := core.Open(core.Config{
			WAL:        wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20, Storage: st},
			GCInterval: 50 * time.Millisecond,
		})
		if err != nil {
			ln.Close()
			cl.close()
			return nil, err
		}
		cl.dbs = append(cl.dbs, db)
		srv, err := server.New(server.Config{
			DB:              db,
			Workers:         workers + 8,
			Durability:      server.DurabilityPerCommit,
			ShardID:         uint32(i),
			ShardMapVersion: m.Version,
			ShardMapBlob:    blob,
		})
		if err != nil {
			ln.Close()
			cl.close()
			return nil, err
		}
		cl.srvs = append(cl.srvs, srv)
		go srv.Serve(ln)
	}
	r, err := shard.NewRouter(m, shard.Options{PoolSize: 1, VerifyShards: true})
	if err != nil {
		cl.close()
		return nil, err
	}
	cl.router = r
	return cl, nil
}

// ShardBench sweeps shard count x cross-partition percentage on TPC-C
// through the shard router: partition-local traffic should scale with the
// shard count (every transaction on the single-shard fast path), and the
// cross-partition knobs show what two-phase commit costs as more
// transactions span shards.
func ShardBench(p Params) error {
	p.setDefaults()
	shardCounts := []int{1, 3}
	remotePcts := []int{0, 1, 10}
	// Each sync occupies a shard's commit device in proportion to the bytes
	// it persists. The offered load (workers below) is sized to saturate
	// even the 3-shard cluster, so measured throughput reflects
	// commit-device capacity, not clients.
	const deviceNSPerKB = int64(8 * time.Millisecond) // 125 KiB/s sync bandwidth

	minW := p.Threads
	if maxShards := shardCounts[len(shardCounts)-1]; minW < 3*maxShards {
		// At least three home warehouses (= three workers) per shard, so
		// every shard's commit device stays saturated at the largest shard
		// count and the measurement reads device capacity, not client count.
		minW = 3 * maxShards
	}
	warehouses := balancedWarehouses(minW, shardCounts[len(shardCounts)-1])
	threads := warehouses // one worker per warehouse: balanced offered load
	report := ShardBenchReport{
		Benchmark:      "shard-tpcc",
		Engine:         EngERMIASI,
		Warehouses:     warehouses,
		Threads:        threads,
		DurationMS:     p.Duration.Milliseconds(),
		DeviceKBPerSec: int64(time.Second) / deviceNSPerKB,
	}

	p.printf("# TPC-C through the shard router: %d warehouses, %d workers, %d KiB/s per commit device\n", warehouses, threads, report.DeviceKBPerSec)
	p.printf("%-8s %-11s %12s %12s %12s %10s\n", "shards", "remote-pct", "txn/s", "fast", "cross", "cross%")

	var local [2]float64
	for si, shards := range shardCounts {
		cl, err := startShardCluster(shards, threads)
		if err != nil {
			return err
		}
		cfg := p.tpccConfig(warehouses, 10, tpcc.AccessHome)
		if err := loadTPCC(cl.router, cfg); err != nil {
			cl.close()
			return err
		}
		// Loading ran at memory speed; measurement pays for durability.
		for _, st := range cl.sts {
			st.setRate(deviceNSPerKB)
		}
		for _, remote := range remotePcts {
			rcfg := cfg
			rcfg.RemoteItemPct = remote
			rcfg.RemotePaymentPct = remote
			if remote == 0 {
				rcfg.RemoteItemPct, rcfg.RemotePaymentPct = -1, -1
			}
			d := tpcc.NewDriver(cl.router, rcfg)
			fast0, cross0 := cl.router.CommitCounts()
			res := Run(Options{
				Workers:  threads,
				Duration: p.Duration,
				Exec: func(worker int, rng *xrand.Rand) (string, error) {
					kind := tpcc.Pick(tpcc.StandardMix, rng)
					return kind.String(), d.Run(kind, worker, rng)
				},
				IsUserAbort: tpcc.IsUserAbort,
			})
			if res.Err != nil {
				cl.close()
				return res.Err
			}
			fast1, cross1 := cl.router.CommitCounts()
			pt := ShardPoint{
				Shards:       shards,
				RemotePct:    remote,
				TxnPerSec:    res.Throughput(),
				Commits:      res.TotalCommits(),
				FastCommits:  fast1 - fast0,
				CrossCommits: cross1 - cross0,
			}
			for _, k := range res.Kinds {
				pt.Aborts += k.Aborts
			}
			if rw := pt.FastCommits + pt.CrossCommits; rw > 0 {
				pt.CrossRatio = float64(pt.CrossCommits) / float64(rw)
			}
			report.Points = append(report.Points, pt)
			if remote == 0 {
				local[si] = pt.TxnPerSec
			}
			p.printf("%-8d %-11d %12.0f %12d %12d %9.1f%%\n",
				shards, remote, pt.TxnPerSec, pt.FastCommits, pt.CrossCommits, 100*pt.CrossRatio)
		}
		cl.close()
	}

	if local[0] > 0 {
		report.LocalSpeedup = local[1] / local[0]
	}
	p.printf("# partition-local speedup (3 shards vs 1): %.2fx\n", report.LocalSpeedup)

	if p.JSONPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		p.printf("# wrote %s\n", p.JSONPath)
	}
	return nil
}
