package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServerBenchJSON runs the network experiment at a tiny scale and
// validates the machine-readable report: both durability modes present,
// every grid point carries throughput and latency percentiles.
func TestServerBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("network bench skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	var sb strings.Builder
	err := ServerBench(Params{
		Duration: 100 * time.Millisecond,
		Out:      &sb,
		JSONPath: path,
	})
	if err != nil {
		t.Fatalf("ServerBench: %v\n%s", err, sb.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report ServerBenchReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if report.Benchmark != "network-server" || report.Storage != "dir" {
		t.Fatalf("report header: %+v", report)
	}
	modes := map[string]int{}
	for _, pt := range report.Points {
		modes[pt.Mode]++
		if pt.Commits == 0 || pt.TxnPerSec <= 0 {
			t.Fatalf("empty grid point: %+v", pt)
		}
		if pt.P99Micros < pt.P50Micros {
			t.Fatalf("p99 < p50: %+v", pt)
		}
		if pt.Mode == "group" && pt.Batches == 0 {
			t.Fatalf("group point has no batches: %+v", pt)
		}
	}
	if modes["group"] == 0 || modes["percommit"] == 0 || modes["group"] != modes["percommit"] {
		t.Fatalf("unbalanced grid: %v", modes)
	}
}
