package bench

import (
	"fmt"
	"io"
	"time"

	"ermia/internal/core"
	"ermia/internal/engine"
	"ermia/internal/micro"
	"ermia/internal/silo"
	"ermia/internal/tpcc"
	"ermia/internal/tpce"
	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// Engine names used in every experiment's output, matching the paper's
// legends.
const (
	EngERMIASI  = "ERMIA-SI"
	EngERMIASSN = "ERMIA-SSN"
	EngSilo     = "Silo-OCC"
)

// AllEngines is the standard comparison set.
var AllEngines = []string{EngSilo, EngERMIASI, EngERMIASSN}

// Params scales an experiment run. Zero values select quick-mode defaults
// suited to small machines; Full approximates the paper's scale.
type Params struct {
	Threads   int           // worker goroutines (the paper's x axis caps at 24)
	Duration  time.Duration // per measurement point
	Items     int           // TPC-C ITEM cardinality
	MicroRows int           // microbenchmark table size
	Customers int           // TPC-E customers
	Full      bool          // use paper-scale parameters
	Out       io.Writer
	// JSONPath, when non-empty, is where experiments that produce
	// machine-readable reports ("server", "repl") write their JSON.
	JSONPath string
}

func (p *Params) setDefaults() {
	if p.Threads == 0 {
		if p.Full {
			p.Threads = 24
		} else {
			p.Threads = 4
		}
	}
	if p.Duration == 0 {
		if p.Full {
			p.Duration = 30 * time.Second
		} else {
			p.Duration = 2 * time.Second
		}
	}
	if p.Items == 0 {
		if p.Full {
			p.Items = 100000
		} else {
			// Items >= NumSuppliers keeps the Q2* supplier→stock join
			// meaningful; the customer count is capped separately so the
			// quick-mode load stays fast.
			p.Items = 10000
		}
	}
	if p.MicroRows == 0 {
		if p.Full {
			// The paper's microbenchmark runs on the Stock table at 24
			// warehouses: 2.4M rows.
			p.MicroRows = 2400000
		} else {
			// Large enough that read-write conflicts (the paper's subject)
			// dominate write-write collisions even at the 10k read set.
			p.MicroRows = 200000
		}
	}
	if p.Customers == 0 {
		if p.Full {
			p.Customers = 5000
		} else {
			p.Customers = 300
		}
	}
	if p.Out == nil {
		p.Out = io.Discard
	}
}

func (p *Params) printf(format string, args ...any) {
	fmt.Fprintf(p.Out, format, args...)
}

// OpenEngine creates a fresh engine by experiment name.
func OpenEngine(name string) (engine.DB, error) {
	switch name {
	case EngERMIASI, EngERMIASSN:
		return core.Open(core.Config{
			WAL:          wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20},
			Serializable: name == EngERMIASSN,
			GCInterval:   50 * time.Millisecond,
		})
	case EngSilo:
		return silo.Open(silo.Config{Snapshots: true})
	default:
		return nil, fmt.Errorf("bench: unknown engine %q", name)
	}
}

// ---- TPC-C helpers ----

func (p *Params) tpccConfig(warehouses int, q2Size int, access tpcc.AccessMode) tpcc.Config {
	cfg := tpcc.Config{Warehouses: warehouses, Items: p.Items, Q2SizePct: q2Size, Access: access}
	if !p.Full {
		cfg.CustomersPerDistrict = 600
	}
	return cfg
}

// runTPCC loads (if load) and runs a TPC-C mix, returning the result.
func (p *Params) runTPCC(db engine.DB, cfg tpcc.Config, mix []tpcc.MixEntry, threads int) (Result, error) {
	d := tpcc.NewDriver(db, cfg)
	res := Run(Options{
		Workers:  threads,
		Duration: p.Duration,
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			kind := tpcc.Pick(mix, rng)
			return kind.String(), d.Run(kind, worker, rng)
		},
		IsUserAbort: tpcc.IsUserAbort,
	})
	return res, res.Err
}

func loadTPCC(db engine.DB, cfg tpcc.Config) error {
	return tpcc.NewDriver(db, cfg).Load()
}

// ---- TPC-E helpers ----

func (p *Params) tpceConfig(sizePct int) tpce.Config {
	return tpce.Config{Customers: p.Customers, AssetEvalSizePct: sizePct}
}

func (p *Params) runTPCE(db engine.DB, cfg tpce.Config, mix []tpce.MixEntry, threads int) (Result, error) {
	d := tpce.NewDriver(db, cfg)
	res := Run(Options{
		Workers:  threads,
		Duration: p.Duration,
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			kind := tpce.Pick(mix, rng)
			return kind.String(), d.Run(kind, worker, rng)
		},
	})
	return res, res.Err
}

func loadTPCE(db engine.DB, cfg tpce.Config) error {
	return tpce.NewDriver(db, cfg).Load()
}

// ---- Experiments ----

// Fig1 reproduces Figure 1: microbenchmark throughput as the write/read
// ratio grows, at read-set sizes 1k and 10k.
func Fig1(p Params) error {
	p.setDefaults()
	ratios := []float64{0.001, 0.003, 0.01, 0.03, 0.1}
	readSets := []int{1000, 10000}
	p.printf("# Figure 1: microbenchmark, %d rows, %d threads, %v/point\n",
		p.MicroRows, p.Threads, p.Duration)
	p.printf("%-10s %-9s %-10s %12s %10s\n", "readset", "w/r", "engine", "kTps", "abort%")
	for _, reads := range readSets {
		for _, eng := range AllEngines {
			db, err := OpenEngine(eng)
			if err != nil {
				return err
			}
			d := micro.NewDriver(db, micro.Config{Rows: p.MicroRows, Reads: reads})
			if err := d.Load(); err != nil {
				db.Close()
				return err
			}
			for _, ratio := range ratios {
				dr := micro.NewDriver(db, micro.Config{Rows: p.MicroRows, Reads: reads, WriteRatio: ratio})
				res := Run(Options{
					Workers:  p.Threads,
					Duration: p.Duration,
					Exec: func(worker int, rng *xrand.Rand) (string, error) {
						return "micro", dr.Run(worker, rng)
					},
				})
				if res.Err != nil {
					db.Close()
					return res.Err
				}
				k := res.Kinds["micro"]
				p.printf("%-10d %-9g %-10s %12.2f %9.1f%%\n",
					reads, ratio, eng, res.Throughput()/1000, k.AbortRatio()*100)
			}
			db.Close()
		}
	}
	return nil
}

// Fig2 reproduces Figure 2: per-transaction commit rates for TPC-C and for
// TPC-C + Q2* (10% size); Silo starves Q2*.
func Fig2(p Params) error {
	p.setDefaults()
	warehouses := p.Threads
	for _, hybrid := range []bool{false, true} {
		mix := tpcc.StandardMix
		label := "TPC-C"
		if hybrid {
			mix = tpcc.HybridMix
			label = "TPC-C + Q2* (10% size)"
		}
		p.printf("# Figure 2: %s, %d warehouses, %d threads\n", label, warehouses, p.Threads)
		p.printf("%-10s %-14s %12s %12s %10s\n", "engine", "txn", "commits/s", "attempts/s", "abort%")
		for _, eng := range AllEngines {
			db, err := OpenEngine(eng)
			if err != nil {
				return err
			}
			cfg := p.tpccConfig(warehouses, 10, tpcc.AccessHome)
			if err := loadTPCC(db, cfg); err != nil {
				db.Close()
				return err
			}
			res, err := p.runTPCC(db, cfg, mix, p.Threads)
			if err != nil {
				db.Close()
				return err
			}
			for _, kind := range []tpcc.TxnKind{tpcc.NewOrder, tpcc.Payment,
				tpcc.OrderStatus, tpcc.Delivery, tpcc.StockLevel, tpcc.Q2Star} {
				k, ok := res.Kinds[kind.String()]
				if !ok {
					continue
				}
				p.printf("%-10s %-14s %12.0f %12.0f %9.1f%%\n", eng, kind,
					float64(k.Commits)/res.Duration.Seconds(),
					float64(k.Attempts)/res.Duration.Seconds(),
					k.AbortRatio()*100)
			}
			db.Close()
		}
	}
	return nil
}

// hybridRow is one point of the Figure 5 / Figure 6 panels.
type hybridRow struct {
	size       int
	engine     string
	overallTPS float64
	targetTPS  float64
	abortPct   float64
}

// Fig5 reproduces Figure 5: TPC-C-hybrid overall throughput, Q2*
// throughput, and Q2* abort ratio vs Q2* size, normalized to ERMIA-SI.
func Fig5(p Params) error {
	p.setDefaults()
	sizes := []int{1, 20, 40, 60, 80, 100}
	rows, err := p.hybridSweepTPCC(sizes)
	if err != nil {
		return err
	}
	printHybrid(p, "Figure 5: TPC-C-hybrid vs TPC-CH-Q2* size", "Q2*", sizes, rows)
	return nil
}

func (p *Params) hybridSweepTPCC(sizes []int) ([]hybridRow, error) {
	warehouses := p.Threads
	var rows []hybridRow
	for _, eng := range AllEngines {
		db, err := OpenEngine(eng)
		if err != nil {
			return nil, err
		}
		if err := loadTPCC(db, p.tpccConfig(warehouses, 10, tpcc.AccessHome)); err != nil {
			db.Close()
			return nil, err
		}
		for _, size := range sizes {
			cfg := p.tpccConfig(warehouses, size, tpcc.AccessHome)
			res, err := p.runTPCC(db, cfg, tpcc.HybridMix, p.Threads)
			if err != nil {
				db.Close()
				return nil, err
			}
			row := hybridRow{size: size, engine: eng, overallTPS: res.Throughput()}
			if k, ok := res.Kinds[tpcc.Q2Star.String()]; ok {
				row.targetTPS = float64(k.Commits) / res.Duration.Seconds()
				row.abortPct = k.AbortRatio() * 100
			}
			rows = append(rows, row)
		}
		db.Close()
	}
	return rows, nil
}

// Fig6 reproduces Figure 6: TPC-E-hybrid panels vs AssetEval size.
func Fig6(p Params) error {
	p.setDefaults()
	sizes := []int{1, 20, 40, 60, 80, 100}
	rows, err := p.hybridSweepTPCE(sizes)
	if err != nil {
		return err
	}
	printHybrid(p, "Figure 6: TPC-E-hybrid vs AssetEval size", "AssetEval", sizes, rows)
	return nil
}

func (p *Params) hybridSweepTPCE(sizes []int) ([]hybridRow, error) {
	var rows []hybridRow
	for _, eng := range AllEngines {
		db, err := OpenEngine(eng)
		if err != nil {
			return nil, err
		}
		if err := loadTPCE(db, p.tpceConfig(10)); err != nil {
			db.Close()
			return nil, err
		}
		for _, size := range sizes {
			cfg := p.tpceConfig(size)
			res, err := p.runTPCE(db, cfg, tpce.HybridMix, p.Threads)
			if err != nil {
				db.Close()
				return nil, err
			}
			row := hybridRow{size: size, engine: eng, overallTPS: res.Throughput()}
			if k, ok := res.Kinds[tpce.AssetEval.String()]; ok {
				row.targetTPS = float64(k.Commits) / res.Duration.Seconds()
				row.abortPct = k.AbortRatio() * 100
			}
			rows = append(rows, row)
		}
		db.Close()
	}
	return rows, nil
}

func printHybrid(p Params, title, target string, sizes []int, rows []hybridRow) {
	p.setDefaults()
	base := map[int]hybridRow{}
	for _, r := range rows {
		if r.engine == EngERMIASI {
			base[r.size] = r
		}
	}
	p.printf("# %s (%d threads; normalized to ERMIA-SI; absolute ERMIA-SI TPS last column)\n",
		title, p.Threads)
	p.printf("%-6s %-10s %14s %14s %12s %14s\n",
		"size%", "engine", "norm-overall", "norm-"+target, target+"-abort%", "ERMIA-SI-TPS")
	for _, size := range sizes {
		for _, r := range rows {
			if r.size != size {
				continue
			}
			b := base[size]
			normO, normT := 0.0, 0.0
			if b.overallTPS > 0 {
				normO = r.overallTPS / b.overallTPS
			}
			if b.targetTPS > 0 {
				normT = r.targetTPS / b.targetTPS
			}
			p.printf("%-6d %-10s %14.3f %14.3f %11.1f%% %14.0f\n",
				size, r.engine, normO, normT, r.abortPct, b.overallTPS)
		}
	}
}

// threadSteps picks the scalability sweep points.
func (p *Params) threadSteps() []int {
	if p.Full {
		return []int{1, 6, 12, 18, 24}
	}
	steps := []int{1, 2, 4}
	if p.Threads > 4 {
		steps = append(steps, p.Threads)
	}
	return steps
}

// Fig7 reproduces Figure 7: TPC-C and TPC-E throughput vs thread count.
func Fig7(p Params) error {
	p.setDefaults()
	steps := p.threadSteps()
	p.printf("# Figure 7: scalability, stock mixes (%v/point)\n", p.Duration)
	p.printf("%-8s %-8s %-10s %12s\n", "bench", "threads", "engine", "kTps")
	for _, eng := range AllEngines {
		db, err := OpenEngine(eng)
		if err != nil {
			return err
		}
		cfg := p.tpccConfig(maxInt(steps), 10, tpcc.AccessHome)
		if err := loadTPCC(db, cfg); err != nil {
			db.Close()
			return err
		}
		for _, th := range steps {
			res, err := p.runTPCC(db, cfg, tpcc.StandardMix, th)
			if err != nil {
				db.Close()
				return err
			}
			p.printf("%-8s %-8d %-10s %12.2f\n", "TPC-C", th, eng, res.Throughput()/1000)
		}
		db.Close()
	}
	for _, eng := range AllEngines {
		db, err := OpenEngine(eng)
		if err != nil {
			return err
		}
		cfg := p.tpceConfig(10)
		if err := loadTPCE(db, cfg); err != nil {
			db.Close()
			return err
		}
		for _, th := range steps {
			res, err := p.runTPCE(db, cfg, tpce.StandardMix, th)
			if err != nil {
				db.Close()
				return err
			}
			p.printf("%-8s %-8d %-10s %12.2f\n", "TPC-E", th, eng, res.Throughput()/1000)
		}
		db.Close()
	}
	return nil
}

// Fig8 reproduces Figure 8: TPC-C with uniform and 80-20 skewed warehouse
// targeting vs thread count.
func Fig8(p Params) error {
	p.setDefaults()
	steps := p.threadSteps()
	p.printf("# Figure 8: TPC-C with randomized partition targeting\n")
	p.printf("%-9s %-8s %-10s %12s %10s\n", "access", "threads", "engine", "kTps", "abort%")
	for _, access := range []tpcc.AccessMode{tpcc.AccessUniform, tpcc.AccessSkew} {
		name := "uniform"
		if access == tpcc.AccessSkew {
			name = "80-20"
		}
		for _, eng := range AllEngines {
			db, err := OpenEngine(eng)
			if err != nil {
				return err
			}
			cfg := p.tpccConfig(maxInt(steps), 10, access)
			if err := loadTPCC(db, cfg); err != nil {
				db.Close()
				return err
			}
			for _, th := range steps {
				res, err := p.runTPCC(db, cfg, tpcc.StandardMix, th)
				if err != nil {
					db.Close()
					return err
				}
				var aborts, attempts uint64
				for _, k := range res.Kinds {
					aborts += k.Aborts
					attempts += k.Attempts
				}
				abortPct := 0.0
				if attempts > 0 {
					abortPct = float64(aborts) / float64(attempts) * 100
				}
				p.printf("%-9s %-8d %-10s %12.2f %9.1f%%\n", name, th, eng,
					res.Throughput()/1000, abortPct)
			}
			db.Close()
		}
	}
	return nil
}

// Fig9 reproduces Figure 9: TPC-E-hybrid scalability at 10% and 60%
// AssetEval sizes.
func Fig9(p Params) error {
	p.setDefaults()
	steps := p.threadSteps()
	p.printf("# Figure 9: TPC-E-hybrid scalability\n")
	p.printf("%-6s %-8s %-10s %12s\n", "size%", "threads", "engine", "kTps")
	for _, size := range []int{10, 60} {
		for _, eng := range AllEngines {
			db, err := OpenEngine(eng)
			if err != nil {
				return err
			}
			cfg := p.tpceConfig(size)
			if err := loadTPCE(db, cfg); err != nil {
				db.Close()
				return err
			}
			for _, th := range steps {
				res, err := p.runTPCE(db, cfg, tpce.HybridMix, th)
				if err != nil {
					db.Close()
					return err
				}
				p.printf("%-6d %-8d %-10s %12.3f\n", size, th, eng, res.Throughput()/1000)
			}
			db.Close()
		}
	}
	return nil
}

// Fig10 reproduces Figure 10: ERMIA-SI with one log reservation per
// transaction vs one per update operation, on TPC-C.
func Fig10(p Params) error {
	p.setDefaults()
	steps := p.threadSteps()
	p.printf("# Figure 10: ERMIA-SI logging strategies, TPC-C\n")
	p.printf("%-8s %-8s %12s %14s %14s\n", "mode", "threads", "kTps", "log-resv/txn", "log-KB/txn")
	for _, perOp := range []bool{false, true} {
		mode := "Per-TX"
		if perOp {
			mode = "Per-OP"
		}
		db, err := core.Open(core.Config{
			WAL:             wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20},
			LogPerOperation: perOp,
			GCInterval:      50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		cfg := p.tpccConfig(maxInt(steps), 10, tpcc.AccessHome)
		if err := loadTPCC(db, cfg); err != nil {
			db.Close()
			return err
		}
		for _, th := range steps {
			before := db.Log().Stats()
			res, err := p.runTPCC(db, cfg, tpcc.StandardMix, th)
			if err != nil {
				db.Close()
				return err
			}
			after := db.Log().Stats()
			commits := float64(res.TotalCommits())
			resvPerTxn, kbPerTxn := 0.0, 0.0
			if commits > 0 {
				resvPerTxn = float64(after.Reservations-before.Reservations) / commits
				kbPerTxn = float64(after.Flushed-before.Flushed) / commits / 1024
			}
			p.printf("%-8s %-8d %12.2f %14.2f %14.2f\n",
				mode, th, res.Throughput()/1000, resvPerTxn, kbPerTxn)
		}
		db.Close()
	}
	return nil
}

// Fig11 reproduces Figure 11: ERMIA-SI per-transaction cycle breakdown by
// component (index / indirection / log / other) as threads grow.
func Fig11(p Params) error {
	p.setDefaults()
	steps := p.threadSteps()
	p.printf("# Figure 11: ERMIA-SI component breakdown per committed txn, TPC-C\n")
	p.printf("%-8s %12s %10s %10s %10s %10s\n",
		"threads", "us/txn", "index%", "indir%", "log%", "other%")
	for _, th := range steps {
		db, err := core.Open(core.Config{
			WAL:        wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20},
			GCInterval: 50 * time.Millisecond,
			Profile:    true,
		})
		if err != nil {
			return err
		}
		cfg := p.tpccConfig(maxInt(steps), 10, tpcc.AccessHome)
		if err := loadTPCC(db, cfg); err != nil {
			db.Close()
			return err
		}
		// Snapshot the counters so the load phase is excluded.
		var baseIdx, baseInd, baseLg int64
		for w := 0; w < th; w++ {
			prof := db.WorkerProfile(w)
			baseIdx += prof.Index.Load()
			baseInd += prof.Indirect.Load()
			baseLg += prof.Log.Load()
		}
		res, err := p.runTPCC(db, cfg, tpcc.StandardMix, th)
		if err != nil {
			db.Close()
			return err
		}
		var idx, ind, lg int64
		for w := 0; w < th; w++ {
			prof := db.WorkerProfile(w)
			idx += prof.Index.Load()
			ind += prof.Indirect.Load()
			lg += prof.Log.Load()
		}
		idx -= baseIdx
		ind -= baseInd
		lg -= baseLg
		commits := res.TotalCommits()
		if commits == 0 {
			db.Close()
			continue
		}
		totalBusy := res.Duration.Nanoseconds() * int64(th)
		other := totalBusy - idx - ind - lg
		if other < 0 {
			other = 0
		}
		usPerTxn := float64(totalBusy) / float64(commits) / 1000
		p.printf("%-8d %12.1f %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", th, usPerTxn,
			pct(idx, totalBusy), pct(ind, totalBusy), pct(lg, totalBusy), pct(other, totalBusy))
		db.Close()
	}
	return nil
}

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total) * 100
}

// Fig12 reproduces Figure 12: Q2* latency vs threads at 60% and 80% sizes.
func Fig12(p Params) error {
	p.setDefaults()
	steps := p.threadSteps()
	p.printf("# Figure 12: TPC-CH-Q2* latency (committed executions)\n")
	p.printf("%-6s %-8s %-10s %12s %12s %12s\n",
		"size%", "threads", "engine", "mean-ms", "min-ms", "max-ms")
	for _, size := range []int{60, 80} {
		for _, eng := range AllEngines {
			db, err := OpenEngine(eng)
			if err != nil {
				return err
			}
			cfg := p.tpccConfig(maxInt(steps), size, tpcc.AccessHome)
			if err := loadTPCC(db, cfg); err != nil {
				db.Close()
				return err
			}
			for _, th := range steps {
				res, err := p.runTPCC(db, cfg, tpcc.HybridMix, th)
				if err != nil {
					db.Close()
					return err
				}
				k, ok := res.Kinds[tpcc.Q2Star.String()]
				if !ok || k.Commits == 0 {
					p.printf("%-6d %-8d %-10s %12s %12s %12s\n", size, th, eng, "starved", "-", "-")
					continue
				}
				p.printf("%-6d %-8d %-10s %12.2f %12.2f %12.2f\n", size, th, eng,
					ms(k.MeanLatency()), ms(k.MinLatency()), ms(k.MaxLatency()))
			}
			db.Close()
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Table1 reproduces Table 1: absolute overall TPS of ERMIA-SI on both
// hybrid workloads over the read-mostly transaction's size.
func Table1(p Params) error {
	p.setDefaults()
	sizes := []int{1, 5, 10, 20, 40, 60, 80, 100}
	p.printf("# Table 1: overall TPS of ERMIA-SI over read-mostly txn size\n")
	p.printf("%-14s", "workload")
	for _, s := range sizes {
		p.printf(" %9d%%", s)
	}
	p.printf("\n")

	db, err := OpenEngine(EngERMIASI)
	if err != nil {
		return err
	}
	if err := loadTPCC(db, p.tpccConfig(p.Threads, 10, tpcc.AccessHome)); err != nil {
		db.Close()
		return err
	}
	p.printf("%-14s", "TPC-C-hybrid")
	for _, size := range sizes {
		res, err := p.runTPCC(db, p.tpccConfig(p.Threads, size, tpcc.AccessHome), tpcc.HybridMix, p.Threads)
		if err != nil {
			db.Close()
			return err
		}
		p.printf(" %10.0f", res.Throughput())
	}
	p.printf("\n")
	db.Close()

	db, err = OpenEngine(EngERMIASI)
	if err != nil {
		return err
	}
	if err := loadTPCE(db, p.tpceConfig(10)); err != nil {
		db.Close()
		return err
	}
	p.printf("%-14s", "TPC-E-hybrid")
	for _, size := range sizes {
		res, err := p.runTPCE(db, p.tpceConfig(size), tpce.HybridMix, p.Threads)
		if err != nil {
			db.Close()
			return err
		}
		p.printf(" %10.0f", res.Throughput())
	}
	p.printf("\n")
	db.Close()
	return nil
}

func maxInt(s []int) int {
	m := s[0]
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// Experiments maps experiment names to their runners.
var Experiments = map[string]func(Params) error{
	"fig1": Fig1, "fig2": Fig2, "fig5": Fig5, "fig6": Fig6, "fig7": Fig7,
	"fig8": Fig8, "fig9": Fig9, "fig10": Fig10, "fig11": Fig11,
	"fig12": Fig12, "table1": Table1, "server": ServerBench, "repl": ReplBench,
	"ckpt": CkptBench, "chaos": ChaosBench, "query": QueryBench,
	"shard": ShardBench,
}

// ExperimentOrder lists experiments in paper order for "all"; "server",
// "repl", and "ckpt" (not from the paper's evaluation) come last.
var ExperimentOrder = []string{
	"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "table1", "server", "repl", "ckpt", "chaos", "query",
	"shard",
}
