package bench

import "testing"

// TestDegradeSweepBothEngines drives the inject→degrade→serve-reads→heal→
// reattach→write-again cycle on both engines and lets DegradeSweep's
// internal invariants (read service while degraded, typed write refusal,
// zero loss of acknowledged commits at the recovery audit) do the checking.
func TestDegradeSweepBothEngines(t *testing.T) {
	for _, tgt := range DegradeTargets() {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			res, err := DegradeSweep(tgt, DegradeOptions{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles != 3 || res.Committed == 0 || res.RefusedWrites == 0 ||
				res.DegradedReads == 0 || res.Audited == 0 {
				t.Fatalf("sweep did not exercise every phase: %+v", res)
			}

			// The sweep is single-threaded and seeded: a rerun must observe
			// the exact same counts.
			again, err := DegradeSweep(tgt, DegradeOptions{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if again != res {
				t.Fatalf("sweep not reproducible: %+v then %+v", res, again)
			}
		})
	}
}
