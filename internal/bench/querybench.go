package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"ermia/internal/engine"
	"ermia/internal/query"
	"ermia/internal/tpcc"
	"ermia/internal/xrand"
)

// The query experiment quantifies the HTAP claim the query subsystem rides
// on: because every analytical plan executes inside one SI snapshot, long
// scans neither block nor abort the OLTP writers sharing the tables. Three
// phases over one database:
//
//  1. Analytics alone: each CH-style query runs repeatedly with no writers,
//     giving its baseline latency distribution.
//  2. Writer slices, interleaved: the TPC-C mix runs in short paired
//     slices — one "writers alone" (baseline), one "writers plus an
//     analytical stream" (concurrent), in randomized order within each
//     pair — so the steady table growth TPC-C causes (each slice leaves a
//     bigger database than it found) cancels out of the comparison instead
//     of masquerading as analytical interference.
//
// The analytical stream cycles the CH queries, each in its own snapshot,
// paced CH-style with think time so the stream's CPU duty cycle is bounded
// (~1/(1+think factor)) and the measured writer delta reflects SI
// interference — blocking or conflict aborts would crater throughput far
// beyond the CPU share — rather than raw CPU stealing on small machines.
// The delta must stay inside the acceptance bound at measurement-grade
// durations; each concurrent slice also runs an audit proving the snapshot
// is frozen mid-churn (the same aggregate twice in one snapshot is
// identical).

// QueryLatency is one analytical query's latency distribution.
type QueryLatency struct {
	Name      string `json:"name"`
	Runs      int    `json:"runs"`
	Rows      int    `json:"rows"` // result rows of one run
	P50Micros int64  `json:"p50_us"`
	P95Micros int64  `json:"p95_us"`
	MaxMicros int64  `json:"max_us"`
}

// QueryBenchReport is the machine-readable output of the query experiment
// (written to Params.JSONPath as BENCH_query.json).
type QueryBenchReport struct {
	Benchmark        string  `json:"benchmark"` // "query"
	Engine           string  `json:"engine"`
	Warehouses       int     `json:"warehouses"`
	Threads          int     `json:"threads"`
	AnalyticsWorkers int     `json:"analytics_workers"`
	BaselineTps      float64 `json:"baseline_tps"`
	ConcurrentTps    float64 `json:"concurrent_tps"`
	// WriterDeltaPct is how much writer throughput dropped with analytics
	// running, as a percentage: the median over interleaved slice pairs of
	// each pair's concurrent/baseline throughput ratio.
	WriterDeltaPct float64 `json:"writer_delta_pct"`
	// Queries holds the no-writer latency phase; ConcurrentRuns counts
	// analytical completions during the concurrent phase.
	Queries        []QueryLatency `json:"queries"`
	ConcurrentRuns int            `json:"concurrent_runs"`
}

// queryBenchAccept is the acceptance bound on the writer-throughput delta.
const queryBenchAccept = 15.0

// The analytical stream trickles: each concurrent slice grants it a fixed
// budget of work time (measured as wall time between pacer polls, which
// overestimates its CPU share under contention — the safe direction), and
// once the budget is spent the stream parks until the next slice. This
// bounds the stream's per-slice CPU steal structurally, no matter how
// expensive churn-deepened version chains make an individual row batch.
const (
	queryBudgetPerSlice = 12 * time.Millisecond
	queryPaceMin        = 2 * time.Millisecond
)

// queryPairs is the number of interleaved baseline/concurrent slice pairs.
// Slices are short and pairs many: TPC-C's table growth makes writer
// throughput decay nonlinearly over the phase, and only a fine-grained
// alternation cancels that decay out of the comparison. Which slice of a
// pair runs first is randomized — a fixed alternation resonates with
// periodic background work (GC, log flushes) and biases whichever side
// its phase happens to align with.
const queryPairs = 24

// queryLatencyPhase runs each CH query `runs` times back to back (no
// writers) and fills the report's latency table.
func (p *Params) queryLatencyPhase(db engine.DB, worker, runs int, report *QueryBenchReport) error {
	for _, q := range tpcc.CHQueries() {
		var lats []time.Duration
		rows := 0
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			out, err := query.RunReadOnly(db, worker, q.Plan, query.Options{})
			if err != nil {
				return fmt.Errorf("%s: %w", q.Name, err)
			}
			lats = append(lats, time.Since(t0))
			rows = len(out)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ql := QueryLatency{
			Name: q.Name, Runs: runs, Rows: rows,
			P50Micros: pctMicros(lats, 0.50),
			P95Micros: pctMicros(lats, 0.95),
			MaxMicros: pctMicros(lats, 1.0),
		}
		report.Queries = append(report.Queries, ql)
		p.printf("%-14s %8d %8d %10d %10d %10d\n",
			ql.Name, ql.Runs, ql.Rows, ql.P50Micros, ql.P95Micros, ql.MaxMicros)
	}
	return nil
}

// streamGate pauses the analytical stream outside concurrent slices and
// trickles it inside them, so one long-running query can span several
// slices with its snapshot pinned while the baseline measurement stays
// uncontaminated.
type streamGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	open   bool
	done   bool
	parked bool          // stream is blocked waiting for an open gate + budget
	dead   bool          // stream goroutine exited
	budget time.Duration // remaining work budget in the current window
	// lastRelease is when pace last returned control to the stream; only
	// the stream goroutine touches it.
	lastRelease time.Time
}

func newStreamGate() *streamGate {
	g := &streamGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *streamGate) set(open bool) {
	g.mu.Lock()
	g.open = open
	if open {
		g.budget = queryBudgetPerSlice
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

func (g *streamGate) finish() {
	g.mu.Lock()
	g.done = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// exit marks the stream goroutine as gone so quiesce never waits on it.
func (g *streamGate) exit() {
	g.mu.Lock()
	g.dead = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// quiesce blocks until the stream is parked at a closed gate (or gone), so
// no trickle work leaks into the slice that follows a concurrent one: the
// stream may be mid-sleep when the gate closes and would otherwise run one
// more contended batch inside the next measurement window.
func (g *streamGate) quiesce() {
	g.mu.Lock()
	for !g.parked && !g.dead {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// pace is the stream's query.Options.Cancel hook, polled between row
// batches: it charges the work time since the previous poll against the
// window's budget, parks until a fresh window whenever the gate is closed
// or the budget is spent, and reports true once the phase is over. Work
// time is measured before any wait so blocked time is never charged.
func (g *streamGate) pace() bool {
	var busy time.Duration
	if !g.lastRelease.IsZero() {
		busy = time.Since(g.lastRelease)
	}
	g.mu.Lock()
	g.budget -= busy
	if !g.done && (!g.open || g.budget <= 0) {
		g.parked = true
		g.cond.Broadcast()
		for !g.done && (!g.open || g.budget <= 0) {
			g.cond.Wait()
		}
		g.parked = false
	}
	done := g.done
	g.mu.Unlock()
	if done {
		return true
	}
	// A short breath between batches keeps the writers scheduled ahead of
	// the stream even inside the budget window.
	time.Sleep(queryPaceMin)
	g.lastRelease = time.Now()
	return false
}

// runGatedAnalytics cycles CH queries on one engine worker, paced by the
// gate, until the gate finishes. Completions accumulate into *runs (read
// only after the goroutine is joined).
func runGatedAnalytics(db engine.DB, worker int, gate *streamGate, runs *int, errs chan<- error) {
	defer gate.exit()
	byName := make(map[string]tpcc.CHQuery)
	for _, q := range tpcc.CHQueries() {
		byName[q.Name] = q
	}
	// Cheap fixed-cardinality scans first so short concurrent windows still
	// complete whole queries; the scans over growing tables follow and may
	// each span several slices.
	var queries []tpcc.CHQuery
	for _, n := range []string{"Q13-credit", "Q4-ordersize", "Q5-suppliers",
		"Q6-forecast", "Q1-pricing", "Q3-unshipped", "Q14-promo"} {
		queries = append(queries, byName[n])
	}
	for i := 0; ; i++ {
		q := queries[i%len(queries)]
		_, err := query.RunReadOnly(db, worker, q.Plan, query.Options{Cancel: gate.pace})
		if errors.Is(err, engine.ErrQueryCancelled) {
			return // phase over
		}
		if err != nil {
			errs <- fmt.Errorf("%s: %w", q.Name, err)
			return
		}
		*runs++
	}
}

// querySnapshotAudit runs the same aggregate twice inside one snapshot
// while writers churn; the results must be identical (the snapshot cannot
// move mid-query). The customer table is the sharpest probe: its
// cardinality is fixed but Payment updates balances constantly, so a
// leaky snapshot would show different totals between the two passes.
func querySnapshotAudit(db engine.DB, worker int) error {
	plan := tpcc.CHCustomerCredit()
	txn := db.BeginReadOnly(worker)
	defer txn.Abort()
	first, err := query.Collect(txn, db.OpenTable, plan, query.Options{})
	if err != nil {
		return err
	}
	second, err := query.Collect(txn, db.OpenTable, plan, query.Options{})
	if err != nil {
		return err
	}
	if len(first) != len(second) {
		return fmt.Errorf("bench: snapshot moved mid-query: %d then %d groups", len(first), len(second))
	}
	for i := range first {
		for c := range first[i] {
			if first[i][c] != second[i][c] {
				return fmt.Errorf("bench: snapshot moved mid-query: %v then %v", first[i], second[i])
			}
		}
	}
	return nil
}

func pctMicros(lats []time.Duration, p float64) int64 {
	if len(lats) == 0 {
		return 0
	}
	i := int(p * float64(len(lats)-1))
	return lats[i].Microseconds()
}

// QueryBench is the HTAP experiment; see the file comment.
func QueryBench(p Params) error {
	p.setDefaults()
	warehouses := 2
	latencyRuns := 2
	if p.Full {
		warehouses = 4
		latencyRuns = 5
	}

	db, err := OpenEngine(EngERMIASI)
	if err != nil {
		return err
	}
	defer db.Close()
	cfg := p.tpccConfig(warehouses, 10, tpcc.AccessHome)
	if !p.Full {
		// Small districts keep the quick-mode analytical scans at tens of
		// milliseconds so every phase completes quickly; full mode uses the
		// standard quick-bench cardinality.
		cfg.CustomersPerDistrict = 60
	}
	if err := loadTPCC(db, cfg); err != nil {
		return err
	}

	report := QueryBenchReport{
		Benchmark: "query", Engine: EngERMIASI,
		Warehouses: warehouses, Threads: p.Threads, AnalyticsWorkers: 1,
	}
	p.printf("# query: CH-style analytics over live TPC-C tables, %d warehouses, %d threads, %v/phase\n",
		warehouses, p.Threads, p.Duration)

	// Phase 1: analytics alone — per-query latency.
	p.printf("%-14s %8s %8s %10s %10s %10s\n", "query", "runs", "rows", "p50(us)", "p95(us)", "max(us)")
	if err := p.queryLatencyPhase(db, p.Threads, latencyRuns, &report); err != nil {
		return fmt.Errorf("bench: query latency phase: %w", err)
	}

	// Phase 2: interleaved writer slices. Rounds alternate B,C / C,B so
	// the database growth each slice causes cancels between the two sides.
	sliceP := p
	sliceP.Duration = p.Duration / 16
	if sliceP.Duration < 50*time.Millisecond {
		sliceP.Duration = 50 * time.Millisecond
	}
	var baseCommits, concCommits uint64
	var baseSecs, concSecs float64
	var ratios []float64 // per-round concurrent/baseline throughput
	gate := newStreamGate()
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runGatedAnalytics(db, p.Threads, gate, &report.ConcurrentRuns, errs)
	}()
	rng := xrand.New(0x9b17)
	sliceErr := func() error {
		for pair := 0; pair < queryPairs; pair++ {
			var pairBase, pairConc float64
			concFirst := rng.Intn(2) == 1
			for half := 0; half < 2; half++ {
				concurrent := (half == 0) == concFirst
				if !concurrent {
					res, err := sliceP.runTPCC(db, cfg, tpcc.StandardMix, p.Threads)
					if err != nil {
						return fmt.Errorf("bench: query baseline slice: %w", err)
					}
					baseCommits += res.TotalCommits()
					baseSecs += res.Duration.Seconds()
					pairBase = res.Throughput()
					continue
				}
				// Spot-check the frozen-snapshot property in a few slices
				// rather than all: the audit's own scan cost grows with
				// version-chain depth, and the pair median tolerates a few
				// audit-loaded slices.
				audit := pair == 0 || pair == queryPairs/2 || pair == queryPairs-1
				gate.set(true)
				audited := make(chan error, 1)
				if audit {
					go func() { audited <- querySnapshotAudit(db, p.Threads+1) }()
				} else {
					audited <- nil
				}
				res, err := sliceP.runTPCC(db, cfg, tpcc.StandardMix, p.Threads)
				gate.set(false)
				gate.quiesce()
				if err != nil {
					return fmt.Errorf("bench: query concurrent slice: %w", err)
				}
				if aerr := <-audited; aerr != nil {
					return fmt.Errorf("bench: snapshot audit: %w", aerr)
				}
				concCommits += res.TotalCommits()
				concSecs += res.Duration.Seconds()
				pairConc = res.Throughput()
			}
			if pairBase > 0 {
				ratios = append(ratios, pairConc/pairBase)
			}
		}
		return nil
	}()
	gate.finish()
	wg.Wait()
	if sliceErr != nil {
		return sliceErr
	}
	select {
	case aerr := <-errs:
		return fmt.Errorf("bench: analytics stream: %w", aerr)
	default:
	}
	if baseSecs > 0 {
		report.BaselineTps = float64(baseCommits) / baseSecs
	}
	if concSecs > 0 {
		report.ConcurrentTps = float64(concCommits) / concSecs
	}
	// The delta is the median of the per-pair ratios, not the ratio of the
	// aggregates: pairing compares adjacent slices over near-identical
	// table sizes, and the median rejects pairs where a GC pause or log
	// flush landed in one side.
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		report.WriterDeltaPct = (1 - ratios[len(ratios)/2]) * 100
	}

	p.printf("%-14s %12s\n", "phase", "writer-kTps")
	p.printf("%-14s %12.1f\n", "baseline", report.BaselineTps/1000)
	p.printf("%-14s %12.1f   (delta %.1f%%, %d analytical runs)\n",
		"concurrent", report.ConcurrentTps/1000, report.WriterDeltaPct, report.ConcurrentRuns)

	// The HTAP bound. Short smoke runs are too noisy to gate on — enforce
	// only at measurement-grade durations.
	if p.Duration >= time.Second && report.WriterDeltaPct > queryBenchAccept {
		return fmt.Errorf("bench: writer throughput dropped %.1f%% with analytics (bound %.0f%%): %.0f -> %.0f tps",
			report.WriterDeltaPct, queryBenchAccept, report.BaselineTps, report.ConcurrentTps)
	}

	if p.JSONPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		p.printf("# wrote %s\n", p.JSONPath)
	}
	return nil
}
