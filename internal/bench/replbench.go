package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"ermia/internal/client"
	"ermia/internal/core"
	"ermia/internal/repl"
	"ermia/internal/server"
	"ermia/internal/wal"
	"ermia/internal/xrand"
)

// ReplPoint is one load level of the replication experiment: a primary under
// a write workload with one streaming replica, reporting the replica's
// staleness (lag in log bytes between the primary's durable horizon and the
// replica's applied watermark) and its apply rate.
type ReplPoint struct {
	Writers   int     `json:"writers"`
	TxnPerSec float64 `json:"txn_per_sec"`

	ApplyBlocksPerSec float64 `json:"apply_blocks_per_sec"`
	ApplyMBPerSec     float64 `json:"apply_mb_per_sec"`
	Batches           uint64  `json:"batches"`

	// Lag percentiles over samples taken every few milliseconds while the
	// writers run, in log bytes (0 = replica fully caught up at sample).
	LagP50Bytes uint64 `json:"lag_p50_bytes"`
	LagP99Bytes uint64 `json:"lag_p99_bytes"`
	LagMaxBytes uint64 `json:"lag_max_bytes"`

	// CatchupMicros is how long after the last writer stopped the replica
	// took to reach the primary's final durable horizon.
	CatchupMicros int64 `json:"catchup_us"`
}

// ReplBenchReport is the machine-readable output of the replication
// experiment (written to Params.JSONPath as BENCH_repl.json).
type ReplBenchReport struct {
	Benchmark  string      `json:"benchmark"` // "log-shipping"
	Engine     string      `json:"engine"`
	Storage    string      `json:"storage"` // "dir" for both log and mirror
	DurationMS int64       `json:"duration_ms_per_point"`
	Points     []ReplPoint `json:"points"`
}

// replPoint runs one load level: file-backed primary behind a server,
// file-backed replica streaming from it over loopback TCP, writers doing
// single-insert commits on disjoint keys.
func (p *Params) replPoint(dir string, writers int) (ReplPoint, error) {
	pt := ReplPoint{Writers: writers}
	primarySt, err := wal.NewDirStorage(dir + "/primary")
	if err != nil {
		return pt, err
	}
	db, err := core.Open(core.Config{
		WAL: wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20, Storage: primarySt},
	})
	if err != nil {
		return pt, err
	}
	defer db.Close()
	srv, err := server.New(server.Config{DB: db, Workers: writers + 1, MaxConns: writers + 2})
	if err != nil {
		return pt, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	go srv.Serve(ln)

	mirrorSt, err := wal.NewDirStorage(dir + "/mirror")
	if err != nil {
		return pt, err
	}
	r, err := repl.Start(repl.Config{
		PrimaryAddr: ln.Addr().String(),
		Core:        core.Config{WAL: wal.Config{Storage: mirrorSt}},
	})
	if err != nil {
		return pt, err
	}
	defer r.Close()

	c, err := client.Dial(client.Options{Addr: ln.Addr().String(), PoolSize: writers})
	if err != nil {
		return pt, err
	}
	defer c.Close()
	tbl := c.CreateTable("bench")
	value := make([]byte, 100)

	// Lag sampler: instantaneous staleness as the primary's durable horizon
	// minus the replica's applied watermark, in log bytes. (Sharper than the
	// replica's own Stats().Lag, which only knows the horizon as of the last
	// shipped batch.)
	stopSample := make(chan struct{})
	sampleDone := make(chan []uint64)
	go func() {
		var lags []uint64
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				sampleDone <- lags
				return
			case <-tick.C:
				var lag uint64
				if d, w := db.DurableOffset(), r.Watermark(); d > w {
					lag = d - w
				}
				lags = append(lags, lag)
			}
		}
	}()

	seq := make([]uint64, writers)
	res := Run(Options{
		Workers:  writers,
		Duration: p.Duration,
		Exec: func(worker int, rng *xrand.Rand) (string, error) {
			seq[worker]++
			key := fmt.Sprintf("w%03d-%012d", worker, seq[worker])
			txn := c.Begin(worker)
			if err := txn.Insert(tbl, []byte(key), value); err != nil {
				txn.Abort()
				return "insert", err
			}
			return "insert", txn.Commit()
		},
	})
	close(stopSample)
	lags := <-sampleDone
	if res.Err != nil {
		return pt, res.Err
	}

	// Catch-up drain: writers stopped, measure how long the replica takes
	// to reach the primary's final durable horizon.
	drainStart := time.Now()
	if err := db.WaitDurable(); err != nil {
		return pt, err
	}
	target := db.DurableOffset()
	for r.Watermark() < target {
		if err := r.Err(); err != nil {
			return pt, fmt.Errorf("replica stream failed: %w", err)
		}
		if time.Since(drainStart) > 30*time.Second {
			return pt, fmt.Errorf("replica never caught up: watermark %#x, durable %#x", r.Watermark(), target)
		}
		time.Sleep(time.Millisecond)
	}
	pt.CatchupMicros = time.Since(drainStart).Microseconds()

	stats := r.Stats()
	elapsed := p.Duration.Seconds() + time.Since(drainStart).Seconds()
	pt.TxnPerSec = res.Throughput()
	pt.ApplyBlocksPerSec = float64(stats.Blocks) / elapsed
	pt.ApplyMBPerSec = float64(stats.Bytes) / elapsed / (1 << 20)
	pt.Batches = stats.Batches
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	if n := len(lags); n > 0 {
		pt.LagP50Bytes = lags[n/2]
		pt.LagP99Bytes = lags[n*99/100]
		pt.LagMaxBytes = lags[n-1]
	}
	return pt, nil
}

// ReplBench is the log-shipping replication experiment: one streaming
// replica behind a loopback primary under an insert workload, measuring
// replica staleness (lag in log bytes) and the replica's apply rate, plus
// the drain time to full catch-up once the writers stop. Both the primary
// log and the replica mirror are file-backed.
func ReplBench(p Params) error {
	p.setDefaults()
	writerGrid := []int{1, p.Threads}
	if p.Full {
		writerGrid = []int{1, 4, p.Threads}
	}

	base, err := os.MkdirTemp("", "ermia-replbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(base)

	report := ReplBenchReport{
		Benchmark:  "log-shipping",
		Engine:     EngERMIASI,
		Storage:    "dir",
		DurationMS: p.Duration.Milliseconds(),
	}

	p.printf("%-8s %12s %14s %12s %12s %12s %12s\n",
		"writers", "txn/s", "apply-blk/s", "lag-p50", "lag-p99", "lag-max", "catchup(us)")
	for i, writers := range writerGrid {
		pt, err := p.replPoint(fmt.Sprintf("%s/point-%d", base, i), writers)
		if err != nil {
			return fmt.Errorf("bench: repl w=%d: %w", writers, err)
		}
		report.Points = append(report.Points, pt)
		p.printf("%-8d %12.0f %14.0f %12d %12d %12d %12d\n",
			pt.Writers, pt.TxnPerSec, pt.ApplyBlocksPerSec,
			pt.LagP50Bytes, pt.LagP99Bytes, pt.LagMaxBytes, pt.CatchupMicros)
	}

	last := report.Points[len(report.Points)-1]
	p.printf("# replica staleness at %d writers: p50 %dB, max %dB; catch-up %dus after writers stop\n",
		last.Writers, last.LagP50Bytes, last.LagMaxBytes, last.CatchupMicros)

	if p.JSONPath != "" {
		blob, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(p.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		p.printf("# wrote %s\n", p.JSONPath)
	}
	return nil
}
