//go:build !race

package alloctest

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
