// Package alloctest enforces per-operation allocation budgets in tests.
//
// The hotalloc analyzer gates //ermia:hotpath functions to zero heap
// escapes at compile time; this package covers the complementary case —
// functions whose allocations are their documented job (a decoder
// returning a fresh payload, a response builder) and therefore cannot be
// hotpath-annotated, but whose per-op cost must still not regress. Budgets
// are enforced (test failure), not printed.
package alloctest

import "testing"

// Budget fails t if fn performs more than max allocations per run.
// Skipped under the race detector, whose instrumentation changes
// allocation counts.
func Budget(t *testing.T, max float64, fn func()) {
	t.Helper()
	if RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	if got := testing.AllocsPerRun(100, fn); got > max {
		t.Errorf("%.1f allocs/op, budget %.0f", got, max)
	}
}
