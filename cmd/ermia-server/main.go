// Command ermia-server puts an ERMIA engine behind a TCP socket speaking
// the internal/proto wire protocol: pipelined per-connection sessions,
// bounded worker-slot admission control, and cross-connection group commit.
//
//	ermia-server -addr :7244 -dir /var/lib/ermia
//
// With -dir the server recovers the database from the directory's log on
// startup, so kill + restart resumes from every durably acknowledged
// commit. SIGINT/SIGTERM triggers a graceful drain: in-flight transactions
// finish and every owed acknowledgment is flushed before connections close;
// a second signal forces immediate shutdown (open transactions abort).
//
// A degraded engine (log device fault) keeps serving reads; writes fail
// with a typed retry-later status, and the admin Reattach frame (see
// Client.Reattach) heals the log in place.
//
// With -replica-of the server runs as a read-only log-shipping replica of
// another ermia-server:
//
//	ermia-server -addr :7245 -dir /var/lib/ermia-replica -replica-of primary:7244
//
// The replica mirrors the primary's log into -dir, replays it continuously,
// and serves snapshot-consistent reads at its replay watermark; writes fail
// with a typed replica-read-only status. After a primary failure, the admin
// Promote frame (see Client.Promote) turns the replica into a full primary
// over its mirrored log, in place, without a restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ermia"
)

func main() {
	var (
		addr         = flag.String("addr", ":7244", "TCP listen address")
		dir          = flag.String("dir", "", "data directory (empty: in-memory, nothing survives restart)")
		serializable = flag.Bool("serializable", false, "enable SSN serializability")
		durability   = flag.String("durability", "group", "commit acknowledgment policy: group, percommit, or none")
		maxConns     = flag.Int("max-conns", 256, "connection cap (excess dials wait in the listen backlog)")
		workers      = flag.Int("workers", 128, "worker-slot pool size (bounds in-flight transactions)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before force-close")
		replicaOf    = flag.String("replica-of", "", "primary ermia-server address; run as a read-only log-shipping replica")
		ckptEvery    = flag.Duration("checkpoint-interval", 0, "take a checkpoint and truncate the log this often (0: only on demand via the admin Checkpoint frame)")
	)
	flag.Parse()

	var mode ermia.Durability
	switch *durability {
	case "group":
		mode = ermia.DurabilityGroup
	case "percommit":
		mode = ermia.DurabilityPerCommit
	case "none":
		mode = ermia.DurabilityNone
	default:
		fmt.Fprintf(os.Stderr, "ermia-server: unknown -durability %q\n", *durability)
		os.Exit(2)
	}

	opts := ermia.Options{Dir: *dir, Serializable: *serializable}
	var db *ermia.DB
	var err error
	if *replicaOf != "" {
		rep, err := ermia.StartReplica(*replicaOf, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: replica:", err)
			os.Exit(1)
		}
		defer rep.Close()
		db = rep.DB()
		fmt.Printf("replicating from %s (watermark %#x)\n", *replicaOf, rep.Watermark())
		go func() {
			if err := waitReplicaErr(rep); err != nil {
				fmt.Fprintln(os.Stderr, "ermia-server: replication stream:", err)
			}
		}()
		// The loop is armed even in replica mode: checkpoints are refused
		// until promotion, then start covering the new primary.
		stopCkpt := startCheckpointLoop(db, *ckptEvery)
		defer stopCkpt()
		srv := newServer(db, mode, *maxConns, *workers, rep)
		runServer(srv, *addr, mode, *workers, *drainTimeout)
		return
	}
	if *dir != "" {
		if db, err = ermia.Recover(opts); err == nil {
			fmt.Println("recovered database from", *dir)
		}
	}
	if db == nil {
		if db, err = ermia.Open(opts); err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: open:", err)
			os.Exit(1)
		}
	}
	defer db.Close()
	stopCkpt := startCheckpointLoop(db, *ckptEvery)
	defer stopCkpt()
	srv := newServer(db, mode, *maxConns, *workers, nil)
	runServer(srv, *addr, mode, *workers, *drainTimeout)
}

// startCheckpointLoop periodically publishes a checkpoint and truncates the
// sealed log segments below it, bounding both recovery time and disk usage.
// Failures are reported and retried at the next tick (a replica refuses
// checkpoints until promotion; that refusal is expected and stays quiet).
// The returned func stops the loop.
func startCheckpointLoop(db *ermia.DB, every time.Duration) func() {
	if every <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if err := db.Checkpoint(); err != nil {
				if !errors.Is(err, ermia.ErrReplicaReadOnly) {
					fmt.Fprintln(os.Stderr, "ermia-server: checkpoint:", err)
				}
				continue
			}
			removed, err := db.TruncateLog()
			if err != nil {
				fmt.Fprintln(os.Stderr, "ermia-server: truncate:", err)
				continue
			}
			if ci, ok := db.LastCheckpoint(); ok {
				fmt.Printf("checkpoint g%d at %#x (%d log segments freed)\n", ci.Gen, ci.Begin, len(removed))
			}
		}
	}()
	return func() { close(stop) }
}

// newServer wires the admin hooks: Reattach always, Promote only when the
// engine is a replica.
func newServer(db *ermia.DB, mode ermia.Durability, maxConns, workers int, rep *ermia.LogReplica) *ermia.Server {
	cfg := ermia.ServerConfig{
		DB:         db,
		MaxConns:   maxConns,
		Workers:    workers,
		Durability: mode,
		ReattachFn: func() (string, error) {
			r, err := db.Reattach(nil)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("reattached: replayed=%dB holes=%d lost=%dB",
				r.Replayed, r.HolesFilled, r.Lost), nil
		},
	}
	if rep != nil {
		cfg.PromoteFn = func() (string, error) {
			if err := rep.Promote(); err != nil {
				return "", err
			}
			return fmt.Sprintf("promoted to primary at offset %#x", rep.Watermark()), nil
		}
	}
	srv, err := ermia.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ermia-server:", err)
		os.Exit(1)
	}
	return srv
}

// waitReplicaErr surfaces a fatal replication-stream error (transient
// transport failures are retried inside the replica and never land here).
func waitReplicaErr(rep *ermia.LogReplica) error {
	for {
		time.Sleep(time.Second)
		if err := rep.Err(); err != nil {
			return err
		}
	}
}

func runServer(srv *ermia.Server, addr string, mode ermia.Durability, workers int, drainTimeout time.Duration) {

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Println("draining (signal again to force)...")
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		go func() {
			<-sigs
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: forced shutdown:", err)
		}
	}()

	fmt.Printf("ermia-server listening on %s (durability=%s, workers=%d)\n", addr, mode, workers)
	if err := srv.ListenAndServe(addr); err != nil {
		fmt.Fprintln(os.Stderr, "ermia-server:", err)
		os.Exit(1)
	}
	stats := srv.Stats()
	fmt.Printf("drained cleanly: %d commits, %d aborts, %d group batches\n",
		stats.Commits, stats.Aborts, stats.GroupBatches)
}
