// Command ermia-server puts an ERMIA engine behind a TCP socket speaking
// the internal/proto wire protocol: pipelined per-connection sessions,
// bounded worker-slot admission control, and cross-connection group commit.
//
//	ermia-server -addr :7244 -dir /var/lib/ermia
//
// With -dir the server recovers the database from the directory's log on
// startup, so kill + restart resumes from every durably acknowledged
// commit. SIGINT/SIGTERM triggers a graceful drain: in-flight transactions
// finish and every owed acknowledgment is flushed before connections close;
// a second signal forces immediate shutdown (open transactions abort).
//
// A degraded engine (log device fault) keeps serving reads; writes fail
// with a typed retry-later status, and the admin Reattach frame (see
// Client.Reattach) heals the log in place.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ermia"
)

func main() {
	var (
		addr         = flag.String("addr", ":7244", "TCP listen address")
		dir          = flag.String("dir", "", "data directory (empty: in-memory, nothing survives restart)")
		serializable = flag.Bool("serializable", false, "enable SSN serializability")
		durability   = flag.String("durability", "group", "commit acknowledgment policy: group, percommit, or none")
		maxConns     = flag.Int("max-conns", 256, "connection cap (excess dials wait in the listen backlog)")
		workers      = flag.Int("workers", 128, "worker-slot pool size (bounds in-flight transactions)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before force-close")
	)
	flag.Parse()

	var mode ermia.Durability
	switch *durability {
	case "group":
		mode = ermia.DurabilityGroup
	case "percommit":
		mode = ermia.DurabilityPerCommit
	case "none":
		mode = ermia.DurabilityNone
	default:
		fmt.Fprintf(os.Stderr, "ermia-server: unknown -durability %q\n", *durability)
		os.Exit(2)
	}

	opts := ermia.Options{Dir: *dir, Serializable: *serializable}
	var db *ermia.DB
	var err error
	if *dir != "" {
		if db, err = ermia.Recover(opts); err == nil {
			fmt.Println("recovered database from", *dir)
		}
	}
	if db == nil {
		if db, err = ermia.Open(opts); err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: open:", err)
			os.Exit(1)
		}
	}
	defer db.Close()

	srv, err := ermia.NewServer(ermia.ServerConfig{
		DB:         db,
		MaxConns:   *maxConns,
		Workers:    *workers,
		Durability: mode,
		ReattachFn: func() (string, error) {
			rep, err := db.Reattach(nil)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("reattached: replayed=%dB holes=%d lost=%dB",
				rep.Replayed, rep.HolesFilled, rep.Lost), nil
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ermia-server:", err)
		os.Exit(1)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Println("draining (signal again to force)...")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-sigs
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: forced shutdown:", err)
		}
	}()

	fmt.Printf("ermia-server listening on %s (durability=%s, workers=%d)\n", *addr, mode, *workers)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "ermia-server:", err)
		os.Exit(1)
	}
	stats := srv.Stats()
	fmt.Printf("drained cleanly: %d commits, %d aborts, %d group batches\n",
		stats.Commits, stats.Aborts, stats.GroupBatches)
}
