// Command ermia-server puts an ERMIA engine behind a TCP socket speaking
// the internal/proto wire protocol: pipelined per-connection sessions,
// bounded worker-slot admission control, and cross-connection group commit.
//
//	ermia-server -addr :7244 -dir /var/lib/ermia
//
// With -dir the server recovers the database from the directory's log on
// startup, so kill + restart resumes from every durably acknowledged
// commit. SIGINT/SIGTERM triggers a graceful drain: in-flight transactions
// finish and every owed acknowledgment is flushed before connections close;
// a second signal forces immediate shutdown (open transactions abort).
//
// A degraded engine (log device fault) keeps serving reads; writes fail
// with a typed retry-later status, and the admin Reattach frame (see
// Client.Reattach) heals the log in place.
//
// With -replica-of the server runs as a read-only log-shipping replica of
// another ermia-server:
//
//	ermia-server -addr :7245 -dir /var/lib/ermia-replica -replica-of primary:7244
//
// The replica mirrors the primary's log into -dir, replays it continuously,
// and serves snapshot-consistent reads at its replay watermark; writes fail
// with a typed replica-read-only status. After a primary failure, the admin
// Promote frame (see Client.Promote) turns the replica into a full primary
// over its mirrored log, in place, without a restart. With -auto-promote
// the failover is unsupervised: the replica watches the primary's
// replication heartbeats (-repl-heartbeat on the primary) and promotes
// itself after the configured silence, claiming the next primary epoch so
// a healed old primary is fenced instead of split-brained. Pair with
// -sync-repl on the primary for zero acked-commit loss across failover.
//
// With -shard-map the server serves as one shard of a horizontally
// partitioned deployment:
//
//	ermia-server -addr :4100 -dir /var/lib/ermia-s0 -shard-map shards.json -shard-id 0
//
// The map file names every shard's address plus the per-table placement
// rules, and the server announces its shard id and map version to
// connecting routers, which fence themselves off a mismatched shard
// (stale-map protection). Point an ermia.ShardRouter (or ermia-demo
// -shard-map) at the same file to run transactions across the fleet; see
// DESIGN.md "Sharding & distributed commit".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ermia"
)

func main() {
	var (
		addr         = flag.String("addr", ":7244", "TCP listen address")
		dir          = flag.String("dir", "", "data directory (empty: in-memory, nothing survives restart)")
		serializable = flag.Bool("serializable", false, "enable SSN serializability")
		durability   = flag.String("durability", "group", "commit acknowledgment policy: group, percommit, or none")
		maxConns     = flag.Int("max-conns", 256, "connection cap (excess dials wait in the listen backlog)")
		workers      = flag.Int("workers", 128, "worker-slot pool size (bounds in-flight transactions)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before force-close")
		replicaOf    = flag.String("replica-of", "", "primary ermia-server address; run as a read-only log-shipping replica")
		ckptEvery    = flag.Duration("checkpoint-interval", 0, "take a checkpoint and truncate the log this often (0: only on demand via the admin Checkpoint frame)")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write budget; a peer that stops reading is disconnected")
		idleTimeout  = flag.Duration("idle-timeout", 0, "disconnect a session silent for this long (0: never; live clients stay inside it with keepalives)")
		syncRepl     = flag.Bool("sync-repl", false, "semi-synchronous replication: acknowledge a write commit only after a replica applied it (requires -durability group)")
		syncReplWait = flag.Duration("sync-repl-wait", 5*time.Second, "cap on a deadline-less semi-sync commit's wait for the replica acknowledgment")
		epoch        = flag.Uint64("epoch", 0, "primary epoch to serve under (failover fencing; a promoted replica adopts its own)")
		replHB       = flag.Duration("repl-heartbeat", time.Second, "emit replication heartbeats this often while caught up (0: disable liveness signal)")
		hbTimeout    = flag.Duration("heartbeat-timeout", 0, "replica mode: declare the stream dead after this much silence and redial (0: block forever)")
		autoPromote  = flag.Duration("auto-promote", 0, "replica mode: promote automatically after this much primary silence (0: promotion stays operator-driven)")
		shardMap     = flag.String("shard-map", "", "shard map JSON file; serve as one shard of it and announce the identity to routers")
		shardID      = flag.Uint("shard-id", 0, "this server's shard index within -shard-map")
	)
	flag.Parse()

	var mode ermia.Durability
	switch *durability {
	case "group":
		mode = ermia.DurabilityGroup
	case "percommit":
		mode = ermia.DurabilityPerCommit
	case "none":
		mode = ermia.DurabilityNone
	default:
		fmt.Fprintf(os.Stderr, "ermia-server: unknown -durability %q\n", *durability)
		os.Exit(2)
	}

	base := ermia.ServerConfig{
		MaxConns:      *maxConns,
		Workers:       *workers,
		Durability:    mode,
		WriteTimeout:  *writeTimeout,
		IdleTimeout:   *idleTimeout,
		SyncRepl:      *syncRepl,
		SyncReplWait:  *syncReplWait,
		Epoch:         *epoch,
		ReplHeartbeat: *replHB,
	}
	if *shardMap != "" {
		m, err := ermia.LoadShardMap(*shardMap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: shard map:", err)
			os.Exit(2)
		}
		if int(*shardID) >= len(m.Shards) {
			fmt.Fprintf(os.Stderr, "ermia-server: -shard-id %d out of range (map has %d shards)\n", *shardID, len(m.Shards))
			os.Exit(2)
		}
		base.ShardID = uint32(*shardID)
		base.ShardMapVersion = m.Version
		base.ShardMapBlob = m.EncodeBinary()
		fmt.Printf("serving as shard %d of map v%d (%d shards)\n", *shardID, m.Version, len(m.Shards))
	} else if *shardID != 0 {
		fmt.Fprintln(os.Stderr, "ermia-server: -shard-id requires -shard-map")
		os.Exit(2)
	}

	opts := ermia.Options{Dir: *dir, Serializable: *serializable}
	var db *ermia.DB
	var err error
	if *replicaOf != "" {
		rep, err := ermia.StartReplicaWith(ermia.ReplicaConfig{
			PrimaryAddr:      *replicaOf,
			HeartbeatTimeout: *hbTimeout,
		}, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: replica:", err)
			os.Exit(1)
		}
		defer rep.Close()
		db = rep.DB()
		fmt.Printf("replicating from %s (watermark %#x)\n", *replicaOf, rep.Watermark())
		go func() {
			if err := waitReplicaErr(rep); err != nil {
				fmt.Fprintln(os.Stderr, "ermia-server: replication stream:", err)
			}
		}()
		// The loop is armed even in replica mode: checkpoints are refused
		// until promotion, then start covering the new primary.
		stopCkpt := startCheckpointLoop(db, *ckptEvery)
		defer stopCkpt()
		srv := newServer(db, base, rep)
		if *autoPromote > 0 {
			startSupervisor(rep, srv, *autoPromote)
		}
		runServer(srv, *addr, mode, *workers, *drainTimeout)
		return
	}
	if *dir != "" {
		if db, err = ermia.Recover(opts); err == nil {
			fmt.Println("recovered database from", *dir)
		}
	}
	if db == nil {
		if db, err = ermia.Open(opts); err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: open:", err)
			os.Exit(1)
		}
	}
	defer db.Close()
	stopCkpt := startCheckpointLoop(db, *ckptEvery)
	defer stopCkpt()
	srv := newServer(db, base, nil)
	runServer(srv, *addr, mode, *workers, *drainTimeout)
}

// startSupervisor arms heartbeat-supervised automatic promotion: once the
// primary has been silent past the timeout, the replica promotes itself,
// claims the next epoch, and this server starts serving writes under it —
// the already-running server picks the new epoch up via SetEpoch, so no
// restart or operator action is involved. The epoch fence keeps a healed
// old primary from ever splitting the brain (see DESIGN.md).
func startSupervisor(rep *ermia.LogReplica, srv *ermia.Server, silence time.Duration) {
	sup := &ermia.ReplicaSupervisor{
		R:              rep,
		SilenceTimeout: silence,
		OnPromote: func(err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "ermia-server: auto-promote:", err)
				return
			}
			srv.SetEpoch(rep.Epoch())
			fmt.Printf("auto-promoted to primary at offset %#x (epoch %d)\n", rep.Watermark(), rep.Epoch())
		},
	}
	go func() {
		if err := sup.Run(make(chan struct{})); err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: supervisor:", err)
		}
	}()
}

// startCheckpointLoop periodically publishes a checkpoint and truncates the
// sealed log segments below it, bounding both recovery time and disk usage.
// Failures are reported and retried at the next tick (a replica refuses
// checkpoints until promotion; that refusal is expected and stays quiet).
// The returned func stops the loop.
func startCheckpointLoop(db *ermia.DB, every time.Duration) func() {
	if every <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if err := db.Checkpoint(); err != nil {
				if !errors.Is(err, ermia.ErrReplicaReadOnly) {
					fmt.Fprintln(os.Stderr, "ermia-server: checkpoint:", err)
				}
				continue
			}
			removed, err := db.TruncateLog()
			if err != nil {
				fmt.Fprintln(os.Stderr, "ermia-server: truncate:", err)
				continue
			}
			if ci, ok := db.LastCheckpoint(); ok {
				fmt.Printf("checkpoint g%d at %#x (%d log segments freed)\n", ci.Gen, ci.Begin, len(removed))
			}
		}
	}()
	return func() { close(stop) }
}

// newServer wires the admin hooks onto the flag-built config: Reattach
// always, Promote only when the engine is a replica.
func newServer(db *ermia.DB, cfg ermia.ServerConfig, rep *ermia.LogReplica) *ermia.Server {
	cfg.DB = db
	cfg.ReattachFn = func() (string, error) {
		r, err := db.Reattach(nil)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("reattached: replayed=%dB holes=%d lost=%dB",
			r.Replayed, r.HolesFilled, r.Lost), nil
	}
	if rep != nil {
		cfg.PromoteFn = func() (string, error) {
			if err := rep.Promote(); err != nil {
				return "", err
			}
			return fmt.Sprintf("promoted to primary at offset %#x", rep.Watermark()), nil
		}
	}
	srv, err := ermia.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ermia-server:", err)
		os.Exit(1)
	}
	return srv
}

// waitReplicaErr surfaces a fatal replication-stream error (transient
// transport failures are retried inside the replica and never land here).
func waitReplicaErr(rep *ermia.LogReplica) error {
	for {
		time.Sleep(time.Second)
		if err := rep.Err(); err != nil {
			return err
		}
	}
}

func runServer(srv *ermia.Server, addr string, mode ermia.Durability, workers int, drainTimeout time.Duration) {

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Println("draining (signal again to force)...")
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		go func() {
			<-sigs
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ermia-server: forced shutdown:", err)
		}
	}()

	fmt.Printf("ermia-server listening on %s (durability=%s, workers=%d)\n", addr, mode, workers)
	if err := srv.ListenAndServe(addr); err != nil {
		fmt.Fprintln(os.Stderr, "ermia-server:", err)
		os.Exit(1)
	}
	stats := srv.Stats()
	fmt.Printf("drained cleanly: %d commits, %d aborts, %d group batches\n",
		stats.Commits, stats.Aborts, stats.GroupBatches)
}
