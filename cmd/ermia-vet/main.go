// Command ermia-vet runs the repo-specific static-analysis suite over the
// module: nine analyzers (atomicmix, cancelpoll, epochguard, errclass,
// hotalloc, lockorder, nodeterminism, txnlifecycle, wirecompat) enforcing
// the concurrency, transaction-lifecycle, cancellation, wire-compatibility,
// allocation, and error-taxonomy invariants the Go compiler cannot see. See
// internal/vet for the analyzer semantics and the //ermia: annotation
// convention.
//
// Usage:
//
//	ermia-vet [-json] [-run a,b] [-C dir] [-baseline file] [./...]
//	ermia-vet -update-baseline file
//	ermia-vet -update-wire-golden
//
// The package pattern is accepted for familiarity but the suite always
// analyzes the whole module: its invariants (lock order, the status
// bijection, mixed field access, transaction lifecycles) only exist
// module-wide. -baseline suppresses findings recorded in a snapshot file
// (written by -update-baseline, format identical to -json output) so a new
// analyzer can land warn-first; -update-wire-golden regenerates
// internal/proto/wire.golden from the current registry constants,
// preserving retired entries. Exit status is 0 when clean, 1 when findings
// are reported, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ermia/internal/vet"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit findings as a JSON array (file, line, col, analyzer, message)")
		runList    = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		chdir      = flag.String("C", "", "analyze the module containing this directory (default: current directory)")
		list       = flag.Bool("list", false, "list the registered analyzers and exit")
		baseline   = flag.String("baseline", "", "suppress findings recorded in this snapshot file (warn-first mode)")
		updateBase = flag.String("update-baseline", "", "write the current findings snapshot to this file and exit 0")
		updateWire = flag.Bool("update-wire-golden", false, "regenerate internal/proto/wire.golden from the code and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ermia-vet [-json] [-run a,b] [-C dir] [-baseline file] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range vet.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "ermia-vet: only the ./... pattern is supported (the suite is module-wide), got %q\n", arg)
			os.Exit(2)
		}
	}

	analyzers := vet.Analyzers()
	if *runList != "" {
		var err error
		analyzers, err = vet.ByName(strings.Split(*runList, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
			os.Exit(2)
		}
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	mod, err := vet.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
		os.Exit(2)
	}

	if *updateWire {
		path, err := vet.WriteWireGolden(mod)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("ermia-vet: wrote %s\n", path)
		return
	}

	findings := vet.RelFindings(mod.Root, vet.Run(mod, analyzers))

	if *updateBase != "" {
		if err := vet.WriteBaseline(*updateBase, findings); err != nil {
			fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("ermia-vet: wrote %d finding(s) to %s\n", len(findings), *updateBase)
		return
	}
	if *baseline != "" {
		b, err := vet.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
			os.Exit(2)
		}
		findings = b.Filter(findings)
	}

	if *jsonOut {
		b, err := vet.JSON(findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	} else {
		os.Stdout.WriteString(vet.Text(findings))
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ermia-vet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
