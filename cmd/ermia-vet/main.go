// Command ermia-vet runs the repo-specific static-analysis suite over the
// module: five analyzers (atomicmix, epochguard, errclass, lockorder,
// nodeterminism) enforcing the concurrency, epoch, and error-taxonomy
// invariants the Go compiler cannot see. See internal/vet for the analyzer
// semantics and the //ermia: annotation convention.
//
// Usage:
//
//	ermia-vet [-json] [-run a,b] [-C dir] [./...]
//
// The package pattern is accepted for familiarity but the suite always
// analyzes the whole module: its invariants (lock order, the status
// bijection, mixed field access) only exist module-wide. Exit status is 0
// when clean, 1 when findings are reported, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ermia/internal/vet"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array (file, line, col, analyzer, message)")
		runList = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		chdir   = flag.String("C", "", "analyze the module containing this directory (default: current directory)")
		list    = flag.Bool("list", false, "list the registered analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ermia-vet [-json] [-run a,b] [-C dir] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range vet.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "ermia-vet: only the ./... pattern is supported (the suite is module-wide), got %q\n", arg)
			os.Exit(2)
		}
	}

	analyzers := vet.Analyzers()
	if *runList != "" {
		var err error
		analyzers, err = vet.ByName(strings.Split(*runList, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
			os.Exit(2)
		}
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	mod, err := vet.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
		os.Exit(2)
	}

	findings := vet.RelFindings(mod.Root, vet.Run(mod, analyzers))
	if *jsonOut {
		b, err := vet.JSON(findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ermia-vet: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	} else {
		os.Stdout.WriteString(vet.Text(findings))
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ermia-vet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
