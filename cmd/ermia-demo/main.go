// Command ermia-demo is a small transactional key-value shell over the
// ERMIA engine, useful for poking at the system by hand:
//
//	ermia-demo -dir /tmp/ermia-data
//	ermia-demo -dir /tmp/ermia-data -serve :7244     # shell + network server
//	ermia-demo -connect localhost:7244               # shell over the wire
//	ermia-demo -shard-map shards.json                # shell over a sharded fleet
//
// Commands (one per line on stdin):
//
//	put <key> <value>     insert or update a record
//	get <key>             read a record
//	del <key>             delete a record
//	scan [prefix]         list records
//	checkpoint            take a fuzzy checkpoint (local engine only)
//	stats                 engine or server counters
//	gc                    run a garbage-collection sweep (local engine only)
//	quit
//
// With -dir, the database recovers from the directory's log on startup, so
// killing the process and restarting demonstrates recovery. With -serve the
// same database is simultaneously exposed to ermia-demo -connect peers; the
// shell and remote clients see each other's commits. With -connect no local
// database is opened at all — every command runs over the wire protocol.
// With -shard-map every command is routed across the fleet the map
// describes: single-shard transactions take the fast path, multi-shard puts
// commit with two-phase commit, and stats shows the per-shard pool counters
// plus the fast/cross commit split.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"ermia"
)

func main() {
	dir := flag.String("dir", "", "data directory (empty: in-memory)")
	serializable := flag.Bool("serializable", true, "enable SSN serializability")
	serve := flag.String("serve", "", "also serve this database for -connect peers on the given address")
	connect := flag.String("connect", "", "connect to a remote ermia-server instead of opening a database")
	shardMap := flag.String("shard-map", "", "shard map JSON file; route commands across a sharded fleet instead of one database")
	decisionLog := flag.String("decision-log", "", "router mode: durable two-phase-commit decision log path (empty: memory-only)")
	flag.Parse()

	var eng ermia.Engine
	var db *ermia.DB          // non-nil only with a local engine
	var cl *ermia.Client      // non-nil only with -connect
	var rt *ermia.ShardRouter // non-nil only with -shard-map

	switch {
	case *shardMap != "":
		if *connect != "" || *serve != "" || *dir != "" {
			fmt.Fprintln(os.Stderr, "ermia-demo: -shard-map excludes -connect, -dir and -serve")
			os.Exit(2)
		}
		m, err := ermia.LoadShardMap(*shardMap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard map:", err)
			os.Exit(1)
		}
		r, err := ermia.NewShardRouter(m, ermia.ShardRouterOptions{
			DecisionLog:  *decisionLog,
			VerifyShards: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "router:", err)
			os.Exit(1)
		}
		defer r.Close()
		rt, eng = r, r
		fmt.Printf("routing across %d shards (map v%d)\n", len(m.Shards), m.Version)
	case *connect != "":
		if *serve != "" || *dir != "" {
			fmt.Fprintln(os.Stderr, "ermia-demo: -connect excludes -dir and -serve")
			os.Exit(2)
		}
		c, err := ermia.DialServer(ermia.ClientOptions{Addr: *connect})
		if err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		defer c.Close()
		cl, eng = c, c
		fmt.Println("connected to", *connect)
	default:
		opts := ermia.Options{Dir: *dir, Serializable: *serializable}
		var err error
		if *dir != "" {
			if db, err = ermia.Recover(opts); err == nil {
				fmt.Println("recovered existing database from", *dir)
			}
		}
		if db == nil {
			if db, err = ermia.Open(opts); err != nil {
				fmt.Fprintln(os.Stderr, "open:", err)
				os.Exit(1)
			}
		}
		defer db.Close()
		eng = db
		if *serve != "" {
			srv, err := ermia.NewServer(ermia.ServerConfig{
				DB: db,
				ReattachFn: func() (string, error) {
					rep, err := db.Reattach(nil)
					if err != nil {
						return "", err
					}
					return fmt.Sprintf("replayed=%dB holes=%d", rep.Replayed, rep.HolesFilled), nil
				},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				os.Exit(1)
			}
			go func() {
				if err := srv.ListenAndServe(*serve); err != nil {
					fmt.Fprintln(os.Stderr, "serve:", err)
				}
			}()
			defer srv.Close()
			fmt.Println("serving on", *serve)
		}
	}
	tbl := eng.CreateTable("kv")

	fmt.Println("ermia-demo ready (put/get/del/scan/checkpoint/stats/gc/quit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			key, val := []byte(fields[1]), []byte(strings.Join(fields[2:], " "))
			err := ermia.WithRetry(eng, 0, func(txn ermia.Txn) error {
				if err := txn.Insert(tbl, key, val); errors.Is(err, ermia.ErrDuplicate) {
					return txn.Update(tbl, key, val)
				} else if err != nil {
					return err
				}
				return nil
			})
			report(err, "ok")
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			txn := eng.Begin(0)
			v, err := txn.Get(tbl, []byte(fields[1]))
			txn.Abort()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%s\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			err := ermia.WithRetry(eng, 0, func(txn ermia.Txn) error {
				return txn.Delete(tbl, []byte(fields[1]))
			})
			report(err, "deleted")
		case "scan":
			var lo, hi []byte
			if len(fields) > 1 {
				lo = []byte(fields[1])
				hi = append([]byte(fields[1]), 0xFF)
			}
			txn := eng.Begin(0)
			n := 0
			err := txn.Scan(tbl, lo, hi, func(k, v []byte) bool {
				fmt.Printf("  %s = %s\n", k, v)
				n++
				return n < 100
			})
			txn.Abort()
			report(err, fmt.Sprintf("%d records", n))
		case "checkpoint":
			if db == nil {
				fmt.Println("checkpoint is a local-engine command; run it on the server")
				continue
			}
			report(db.Checkpoint(), "checkpoint written")
		case "gc":
			if db == nil {
				fmt.Println("gc is a local-engine command; run it on the server")
				continue
			}
			fmt.Printf("pruned %d versions\n", db.RunGC())
		case "stats":
			if rt != nil {
				fast, cross := rt.CommitCounts()
				fmt.Printf("router: fast-path commits=%d cross-shard (2pc) commits=%d\n", fast, cross)
				for i, ps := range rt.PoolStats() {
					fmt.Printf("shard %d pool: requests=%d retries=%d conn-losses=%d rotations=%d\n",
						i, ps.Requests, ps.Retries, ps.ConnLosses, ps.Rotations)
				}
				continue
			}
			if cl != nil {
				s, err := cl.ServerStats()
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				state, cause, _ := cl.Health()
				fmt.Printf("server: conns=%d open-txns=%d commits=%d aborts=%d group-batches=%d durable-lsn=%d health=%v",
					s.Conns, s.OpenTxns, s.Commits, s.Aborts, s.GroupBatches, s.DurableOffset, state)
				if cause != "" {
					fmt.Printf(" (%s)", cause)
				}
				fmt.Println()
				if s.ReplSubscribers > 0 || s.ReplBatches > 0 {
					lag := uint64(0)
					if s.ReplShippedOffset > s.ReplAckedOffset {
						lag = s.ReplShippedOffset - s.ReplAckedOffset
					}
					fmt.Printf("replication: subscribers=%d batches=%d shipped-lsn=%d acked-lsn=%d lag=%dB\n",
						s.ReplSubscribers, s.ReplBatches, s.ReplShippedOffset, s.ReplAckedOffset, lag)
				}
				ps := cl.Stats()
				fmt.Printf("pool: requests=%d retries=%d conn-losses=%d rotations=%d\n",
					ps.Requests, ps.Retries, ps.ConnLosses, ps.Rotations)
				continue
			}
			s := db.Stats()
			fmt.Printf("commits=%d aborts=%d ww-aborts=%d ssn-aborts=%d phantom=%d pruned=%d durable-lsn=%d\n",
				s.Commits.Load(), s.Aborts.Load(), s.WWAborts.Load(),
				s.SerialAborts.Load(), s.PhantomAborts.Load(),
				s.VersionsPruned.Load(), db.Log().DurableOffset())
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
}

func report(err error, ok string) {
	if err != nil {
		fmt.Println("error:", err)
	} else {
		fmt.Println(ok)
	}
}
