// Command ermia-demo is a small transactional key-value shell over the
// ERMIA engine, useful for poking at the system by hand:
//
//	ermia-demo -dir /tmp/ermia-data
//
// Commands (one per line on stdin):
//
//	put <key> <value>     insert or update a record
//	get <key>             read a record
//	del <key>             delete a record
//	scan [prefix]         list records
//	checkpoint            take a fuzzy checkpoint
//	stats                 engine counters
//	gc                    run a garbage-collection sweep
//	quit
//
// With -dir, the database recovers from the directory's log on startup, so
// killing the process and restarting demonstrates recovery.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"ermia"
)

func main() {
	dir := flag.String("dir", "", "data directory (empty: in-memory)")
	serializable := flag.Bool("serializable", true, "enable SSN serializability")
	flag.Parse()

	opts := ermia.Options{Dir: *dir, Serializable: *serializable}
	var db *ermia.DB
	var err error
	if *dir != "" {
		if db, err = ermia.Recover(opts); err == nil {
			fmt.Println("recovered existing database from", *dir)
		}
	}
	if db == nil {
		if db, err = ermia.Open(opts); err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
	}
	defer db.Close()
	tbl := db.CreateTable("kv")

	fmt.Println("ermia-demo ready (put/get/del/scan/checkpoint/stats/gc/quit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			key, val := []byte(fields[1]), []byte(strings.Join(fields[2:], " "))
			err := ermia.WithRetry(db, 0, func(txn ermia.Txn) error {
				if err := txn.Insert(tbl, key, val); errors.Is(err, ermia.ErrDuplicate) {
					return txn.Update(tbl, key, val)
				} else if err != nil {
					return err
				}
				return nil
			})
			report(err, "ok")
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			txn := db.Begin(0)
			v, err := txn.Get(tbl, []byte(fields[1]))
			txn.Abort()
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%s\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			err := ermia.WithRetry(db, 0, func(txn ermia.Txn) error {
				return txn.Delete(tbl, []byte(fields[1]))
			})
			report(err, "deleted")
		case "scan":
			var lo, hi []byte
			if len(fields) > 1 {
				lo = []byte(fields[1])
				hi = append([]byte(fields[1]), 0xFF)
			}
			txn := db.Begin(0)
			n := 0
			err := txn.Scan(tbl, lo, hi, func(k, v []byte) bool {
				fmt.Printf("  %s = %s\n", k, v)
				n++
				return n < 100
			})
			txn.Abort()
			report(err, fmt.Sprintf("%d records", n))
		case "checkpoint":
			report(db.Checkpoint(), "checkpoint written")
		case "gc":
			fmt.Printf("pruned %d versions\n", db.RunGC())
		case "stats":
			s := db.Stats()
			fmt.Printf("commits=%d aborts=%d ww-aborts=%d ssn-aborts=%d phantom=%d pruned=%d durable-lsn=%d\n",
				s.Commits.Load(), s.Aborts.Load(), s.WWAborts.Load(),
				s.SerialAborts.Load(), s.PhantomAborts.Load(),
				s.VersionsPruned.Load(), db.Log().DurableOffset())
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
}

func report(err error, ok string) {
	if err != nil {
		fmt.Println("error:", err)
	} else {
		fmt.Println(ok)
	}
}
