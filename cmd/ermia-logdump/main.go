// Command ermia-logdump inspects an ERMIA log directory: it lists segment
// files, walks every block in offset order, and optionally decodes the
// records inside commit blocks. Useful for debugging recovery issues and
// for seeing the on-disk structures of §3.3 (skip records, segment-closing
// records, overflow chains, checkpoint markers) with your own eyes.
//
//	ermia-logdump -dir /tmp/ermia-data            # block summary
//	ermia-logdump -dir /tmp/ermia-data -records   # decode records too
package main

import (
	"flag"
	"fmt"
	"os"

	"ermia/internal/wal"
)

func main() {
	dir := flag.String("dir", "", "log directory (required)")
	records := flag.Bool("records", false, "decode records inside commit blocks")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ermia-logdump: -dir required")
		os.Exit(2)
	}
	st, err := wal.NewDirStorage(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ermia-logdump:", err)
		os.Exit(1)
	}

	names, err := st.List()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ermia-logdump:", err)
		os.Exit(1)
	}
	fmt.Println("files:")
	for _, n := range names {
		f, err := st.Open(n)
		if err != nil {
			continue
		}
		size, _ := f.Size()
		f.Close()
		fmt.Printf("  %-40s %12d bytes\n", n, size)
	}

	fmt.Println("\nblocks:")
	count := map[uint8]int{}
	res, err := wal.Recover(st, func(b wal.Block) error {
		count[b.Type]++
		fmt.Printf("  %-14s offset=%#012x seg=%-2d payload=%-6d prev=%#x\n",
			typeName(b.Type), b.LSN.Offset(), b.LSN.Segment(), len(b.Payload), b.Prev)
		if *records && (b.Type == wal.BlockCommit || b.Type == wal.BlockOverflow) {
			dumpRecords(b.Payload)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ermia-logdump: scan:", err)
		os.Exit(1)
	}
	fmt.Printf("\nnext offset: %#x\n", res.NextOffset)
	for typ, n := range count {
		fmt.Printf("%-14s %d\n", typeName(typ), n)
	}
}

func typeName(t uint8) string {
	switch t {
	case wal.BlockCommit:
		return "commit"
	case wal.BlockSkip:
		return "skip"
	case wal.BlockOverflow:
		return "overflow"
	case wal.BlockCheckpointBegin:
		return "ckpt-begin"
	case wal.BlockCheckpointEnd:
		return "ckpt-end"
	default:
		return fmt.Sprintf("type%d", t)
	}
}

// dumpRecords decodes the record stream with a local copy of the framing
// (kept deliberately independent of internal/core so the tool keeps working
// while the engine is being debugged).
func dumpRecords(p []byte) {
	le := func(b []byte) uint32 {
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	le64 := func(b []byte) uint64 {
		return uint64(le(b)) | uint64(le(b[4:]))<<32
	}
	for len(p) > 0 {
		kind := p[0]
		p = p[1:]
		switch kind {
		case 1: // create table
			if len(p) < 6 {
				return
			}
			id := le(p)
			nlen := int(uint16(p[4]) | uint16(p[5])<<8)
			p = p[6:]
			if len(p) < nlen {
				return
			}
			fmt.Printf("      create-table id=%d name=%q\n", id, p[:nlen])
			p = p[nlen:]
		case 2, 17: // insert / insert+secondary
			if len(p) < 16 {
				return
			}
			table, oid := le(p), le64(p[4:])
			klen := int(le(p[12:]))
			p = p[16:]
			if len(p) < klen+4 {
				return
			}
			key := p[:klen]
			vlen := int(le(p[klen:]))
			p = p[klen+4:]
			if len(p) < vlen {
				return
			}
			fmt.Printf("      insert table=%d oid=%d key=%x vlen=%d\n", table, oid, key, vlen)
			p = p[vlen:]
			if kind == 17 {
				if len(p) < 1 {
					return
				}
				n := int(p[0])
				p = p[1:]
				for i := 0; i < n; i++ {
					if len(p) < 8 {
						return
					}
					idx := le(p)
					sklen := int(le(p[4:]))
					p = p[8:]
					if len(p) < sklen {
						return
					}
					fmt.Printf("        secondary idx=%d key=%x\n", idx, p[:sklen])
					p = p[sklen:]
				}
			}
		case 3: // update
			if len(p) < 16 {
				return
			}
			table, oid := le(p), le64(p[4:])
			vlen := int(le(p[12:]))
			p = p[16:]
			if len(p) < vlen {
				return
			}
			fmt.Printf("      update table=%d oid=%d vlen=%d\n", table, oid, vlen)
			p = p[vlen:]
		case 4: // delete
			if len(p) < 12 {
				return
			}
			fmt.Printf("      delete table=%d oid=%d\n", le(p), le64(p[4:]))
			p = p[12:]
		case 16: // create index
			if len(p) < 10 {
				return
			}
			id, tid := le(p), le(p[4:])
			nlen := int(uint16(p[8]) | uint16(p[9])<<8)
			p = p[10:]
			if len(p) < nlen {
				return
			}
			fmt.Printf("      create-index id=%d table=%d name=%q\n", id, tid, p[:nlen])
			p = p[nlen:]
		default:
			fmt.Printf("      unknown record kind %d (%d bytes left)\n", kind, len(p))
			return
		}
	}
}
