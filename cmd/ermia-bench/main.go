// Command ermia-bench regenerates every table and figure of the ERMIA
// paper's evaluation (§4) on this reproduction. Each experiment prints an
// aligned text table whose rows correspond to the paper's series.
//
// Usage:
//
//	ermia-bench -experiment fig5 -threads 8 -duration 5s
//	ermia-bench -experiment all
//	ermia-bench -experiment fig1 -full        # paper-scale parameters
//
// Experiments: fig1 fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ermia/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment to run (fig1..fig12, table1, server, repl, ckpt, chaos, all)")
		threads    = flag.Int("threads", 0, "worker goroutines (default: 4, or 24 with -full)")
		duration   = flag.Duration("duration", 0, "measurement time per point (default 2s, 30s with -full)")
		items      = flag.Int("items", 0, "TPC-C ITEM cardinality (default 2000, 100000 with -full)")
		customers  = flag.Int("customers", 0, "TPC-E customers (default 300, 5000 with -full)")
		microRows  = flag.Int("micro-rows", 0, "microbenchmark rows (default 20000, 100000 with -full)")
		full       = flag.Bool("full", false, "approximate the paper's scale (24 threads, 30s, full tables)")
		jsonPath   = flag.String("json", "", "write the experiment's machine-readable report here (server experiment)")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(bench.Experiments))
		for n := range bench.Experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "ermia-bench: -experiment required (use -list to enumerate)")
		os.Exit(2)
	}

	params := bench.Params{
		Threads:   *threads,
		Duration:  *duration,
		Items:     *items,
		Customers: *customers,
		MicroRows: *microRows,
		Full:      *full,
		Out:       os.Stdout,
		JSONPath:  *jsonPath,
	}

	run := func(name string) {
		fn, ok := bench.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "ermia-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		if err := fn(params); err != nil {
			fmt.Fprintf(os.Stderr, "ermia-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("# %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range bench.ExperimentOrder {
			run(name)
		}
		return
	}
	run(*experiment)
}
