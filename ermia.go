// Package ermia is a from-scratch Go reproduction of ERMIA (Kim, Wang,
// Johnson, Pandis — SIGMOD 2016), a memory-optimized database engine for
// heterogeneous workloads. It exposes the ERMIA engine (snapshot isolation,
// with serializability via the Serial Safety Net when requested), the
// Silo-style lightweight-OCC baseline the paper compares against, and a
// common transaction interface that lets the same application code run on
// either.
//
// Quick start:
//
//	db, err := ermia.Open(ermia.Options{Serializable: true})
//	defer db.Close()
//	accounts := db.CreateTable("accounts")
//	err = ermia.WithRetry(db, 0, func(txn ermia.Txn) error {
//	    return txn.Insert(accounts, []byte("alice"), []byte("100"))
//	})
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper's
// evaluation reproduced on this implementation.
package ermia

import (
	"context"
	"time"

	"ermia/internal/client"
	"ermia/internal/core"
	"ermia/internal/engine"
	"ermia/internal/query"
	"ermia/internal/repl"
	"ermia/internal/server"
	"ermia/internal/shard"
	"ermia/internal/silo"
	"ermia/internal/wal"
)

// DB is the ERMIA engine (internal/core.DB re-exported): snapshot-isolation
// MVCC over latch-free indirection arrays, a single-fetch-and-add
// centralized log, epoch-based resource management, and optional SSN
// serializability. It implements the engine-agnostic interface used by the
// benchmarks, plus Checkpoint, WaitDurable, RunGC, and Stats.
type DB = core.DB

// SiloDB is the Silo-OCC baseline engine (internal/silo.DB re-exported).
type SiloDB = silo.DB

// Txn is one transaction: Get/Insert/Update/Delete/Scan, ended by exactly
// one Commit or Abort.
type Txn = engine.Txn

// Table identifies a table within a DB.
type Table = engine.Table

// Engine is the interface both DB and SiloDB satisfy; write applications
// against it to stay engine-agnostic.
type Engine = engine.DB

// Storage abstracts the log medium (heap or directory).
type Storage = wal.Storage

// File is one random-access file within a Storage; needed to implement a
// custom Storage (e.g. a fault-injecting wrapper) outside this module.
type File = wal.File

// NewMemStorage returns a heap-backed Storage, useful for tests and for
// crash-recovery experiments (it can snapshot its durable state).
func NewMemStorage() *wal.MemStorage { return wal.NewMemStorage() }

// CoreTable is the ERMIA engine's concrete table type, exposing Len and the
// secondary-index machinery.
type CoreTable = core.Table

// SecondaryIndex is an ERMIA-native secondary access path: secondary keys
// map directly to OIDs, so record updates touch no index and secondary
// reads skip the primary probe (paper §2).
type SecondaryIndex = core.SecondaryIndex

// SecondaryEntry names one secondary key for Txn.InsertWithSecondary.
type SecondaryEntry = core.SecondaryEntry

// Re-exported error taxonomy. Conflicts (write-write, read validation,
// serialization, phantom) are retryable; use IsRetryable or WithRetry.
// ErrReadOnlyDegraded is an availability error — see Health and Reattach.
var (
	ErrNotFound         = engine.ErrNotFound
	ErrDuplicate        = engine.ErrDuplicate
	ErrWriteConflict    = engine.ErrWriteConflict
	ErrReadValidation   = engine.ErrReadValidation
	ErrSerialization    = engine.ErrSerialization
	ErrPhantom          = engine.ErrPhantom
	ErrReadOnlyDegraded = engine.ErrReadOnlyDegraded
	ErrReplicaReadOnly  = engine.ErrReplicaReadOnly
	ErrRetriesExhausted = engine.ErrRetriesExhausted
)

// IsRetryable reports whether err is a concurrency conflict worth retrying.
func IsRetryable(err error) bool { return engine.IsRetryable(err) }

// Outcome classifies a transaction execution: committed, conflict (retry),
// unavailable (heal the engine first), or fatal (application error).
type Outcome = engine.Outcome

// Outcome values.
const (
	OutcomeCommitted   = engine.OutcomeCommitted
	OutcomeConflict    = engine.OutcomeConflict
	OutcomeUnavailable = engine.OutcomeUnavailable
	OutcomeFatal       = engine.OutcomeFatal
)

// Classify maps a transaction error to the outcome taxonomy.
func Classify(err error) Outcome { return engine.Classify(err) }

// HealthState is the fault-containment state machine both engines share:
// Healthy → Degraded (log device failed; reads keep committing, writes fail
// fast with ErrReadOnlyDegraded) → Healthy again after Reattach, or Failed
// (terminal). See DB.Health, DB.Reattach, SiloDB.Health, SiloDB.Reattach.
type HealthState = engine.HealthState

// Health states.
const (
	Healthy  = engine.Healthy
	Degraded = engine.Degraded
	Failed   = engine.Failed
	Replica  = engine.Replica
)

// HealthStatus is a health snapshot: the state plus the causing fault.
type HealthStatus = engine.HealthStatus

// RetryPolicy bounds a retry loop: attempt cap, exponential backoff with
// jitter, and (via context) wall-clock deadlines.
type RetryPolicy = engine.RetryPolicy

// RunWithRetry executes fn in transactions under the default retry policy
// until one commits, fn fails with a non-conflict error, or ctx is done.
// Conflicts back off exponentially with jitter; ErrReadOnlyDegraded returns
// immediately (retrying cannot succeed until Reattach heals the engine).
func RunWithRetry(ctx context.Context, db Engine, worker int, fn func(Txn) error) error {
	return engine.RunWithRetry(ctx, db, worker, fn)
}

// Isolation selects the concurrency-control scheme (re-exported from
// internal/core): SnapshotIsolation, SSN, or ReadValidation.
type Isolation = core.Isolation

// Isolation levels.
const (
	// SnapshotIsolation is plain SI: readers never block or abort writers
	// and vice versa, but write skew is possible (ERMIA-SI).
	SnapshotIsolation = core.SnapshotIsolation
	// SSN is serializable SI via the Serial Safety Net (ERMIA-SSN).
	SSN = core.SSN
	// ReadValidation is serializable multi-version OCC: commit-time
	// read-set validation on the same physical layer (ERMIA-RV). Writers
	// win over readers, reproducing lightweight-OCC behaviour.
	ReadValidation = core.ReadValidation
)

// Options configures an ERMIA engine.
type Options struct {
	// Serializable overlays the SSN certifier on snapshot isolation
	// (ERMIA-SSN). Off, transactions run under plain SI (ERMIA-SI).
	// Shorthand for Isolation: SSN.
	Serializable bool
	// Isolation selects the CC scheme explicitly; it wins over
	// Serializable when set.
	Isolation Isolation
	// Dir, when non-empty, stores the log and checkpoints in that
	// directory; otherwise everything stays on the heap (the paper logs to
	// tmpfs).
	Dir string
	// Storage overrides the log medium directly (takes precedence over
	// Dir). Useful for crash-recovery testing with wal.MemStorage.
	Storage Storage
	// SegmentSize and BufferSize tune the log manager (defaults 64MiB/4MiB).
	SegmentSize uint64
	BufferSize  uint64
	// GCInterval runs the background version garbage collector; zero
	// disables it (call DB.RunGC manually).
	GCInterval time.Duration
	// LogPerOperation emulates per-operation WAL round trips instead of
	// one log reservation per transaction (the Figure 10 ablation).
	LogPerOperation bool
	// Profile enables the per-worker cycle breakdown (Figure 11).
	Profile bool
}

func (o Options) coreConfig() (core.Config, error) {
	st := o.Storage
	if st == nil && o.Dir != "" {
		ds, err := wal.NewDirStorage(o.Dir)
		if err != nil {
			return core.Config{}, err
		}
		st = ds
	}
	return core.Config{
		WAL: wal.Config{
			SegmentSize: o.SegmentSize,
			BufferSize:  o.BufferSize,
			Storage:     st,
		},
		Serializable:    o.Serializable,
		Isolation:       o.Isolation,
		LogPerOperation: o.LogPerOperation,
		GCInterval:      o.GCInterval,
		Profile:         o.Profile,
	}, nil
}

// Open creates a fresh ERMIA engine.
func Open(opts Options) (*DB, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	return core.Open(cfg)
}

// Recover rebuilds an ERMIA engine from an existing log (and checkpoint, if
// one exists) in opts.Dir or opts.Storage, then resumes it. The procedure
// is identical after a clean shutdown and after a crash.
func Recover(opts Options) (*DB, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	return core.Recover(cfg)
}

// SiloOptions configures the baseline engine.
type SiloOptions struct {
	// Snapshots enables Silo's copy-on-write read-only snapshots, used by
	// BeginReadOnly transactions.
	Snapshots bool
	// EpochInterval is the group-commit / snapshot epoch period.
	EpochInterval time.Duration
	// Storage holds the value log; required for RecoverSilo.
	Storage Storage
}

func (o SiloOptions) config() silo.Config {
	return silo.Config{
		Snapshots:     o.Snapshots,
		EpochInterval: o.EpochInterval,
		Storage:       o.Storage,
	}
}

// OpenSilo creates a Silo-OCC baseline engine.
func OpenSilo(opts SiloOptions) (*SiloDB, error) {
	return silo.Open(opts.config())
}

// RecoverSilo rebuilds a Silo engine from its value log (SiloR-style
// replay, last writer per key wins by commit TID).
func RecoverSilo(opts SiloOptions) (*SiloDB, error) {
	return silo.Recover(opts.config())
}

// WithRetry runs fn in a transaction on worker's slot, retrying on
// concurrency conflicts until it commits or fn fails with a non-retryable
// error. fn must be idempotent. It is RunWithRetry without a deadline; use
// RunWithRetry directly to bound the loop with a context or a custom
// RetryPolicy.
func WithRetry(db Engine, worker int, fn func(Txn) error) error {
	return engine.RunWithRetry(context.Background(), db, worker, fn)
}

// ---- Network service layer ----
//
// The same Engine interface runs over TCP: put any engine behind a Server
// and application code — including WithRetry — works unchanged against a
// Client. See DESIGN.md ("Network service layer") for the wire protocol,
// session lifetime rules, and the cross-connection group-commit path.
//
//	srv, _ := ermia.NewServer(ermia.ServerConfig{DB: db})
//	go srv.ListenAndServe(":7244")
//	...
//	c, _ := ermia.DialServer(ermia.ClientOptions{Addr: "db-host:7244"})
//	err := ermia.WithRetry(c, 0, func(txn ermia.Txn) error { ... })

// Server serves an Engine over TCP with request pipelining, per-session
// transaction registries, admission control, and cross-connection group
// commit (internal/server re-exported).
type Server = server.Server

// ServerConfig configures a Server: the engine, connection and worker-slot
// limits, the commit durability mode, and the admin reattach hook.
type ServerConfig = server.Config

// ServerStats is the server's counter snapshot (also served remotely via
// Client.Stats).
type ServerStats = server.StatsSnapshot

// Durability selects what a positive Commit acknowledgment promises.
type Durability = server.Durability

// Durability modes.
const (
	// DurabilityGroup acknowledges commits from the cross-connection group
	// committer: one log-durability wakeup covers every commit that arrived
	// during the previous device sync. The default.
	DurabilityGroup = server.DurabilityGroup
	// DurabilityPerCommit pays one uncoordinated device sync per commit —
	// the naive synchronous-commit baseline.
	DurabilityPerCommit = server.DurabilityPerCommit
	// DurabilityNone acknowledges once the commit is logically applied.
	DurabilityNone = server.DurabilityNone
)

// NewServer builds a Server around cfg.DB; start it with Serve or
// ListenAndServe, stop it with Shutdown (graceful drain) or Close.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Client is a remote Engine: a connection-pooled, pipelined client for an
// ermia-server (internal/client re-exported). Wire statuses map back onto
// the error taxonomy above, so IsRetryable, Classify, and WithRetry behave
// identically against local and remote engines.
type Client = client.Client

// ClientOptions configures a Client (address, pool size, dial timeout).
type ClientOptions = client.Options

// DialServer connects to an ermia-server.
func DialServer(opts ClientOptions) (*Client, error) { return client.Dial(opts) }

// Network-layer availability errors. ErrConnLost and ErrOverloaded are
// retryable (a lost connection leaves the commit outcome indeterminate;
// retrying an idempotent transaction is the correct response). ErrShutdown
// classifies as OutcomeUnavailable: the server is draining.
var (
	ErrConnLost   = engine.ErrConnLost
	ErrOverloaded = engine.ErrOverloaded
	ErrShutdown   = engine.ErrShutdown
)

// Deadline and fencing errors. ErrDeadlineExceeded is retryable — the
// request's budget ran out before the server finished (for a commit the
// outcome is indeterminate, exactly like ErrConnLost). ErrStaleEpoch
// classifies as OutcomeUnavailable: this server was deposed by a failover
// and the client should be (and, with FallbackAddrs, is) routed elsewhere.
var (
	ErrDeadlineExceeded = engine.ErrDeadlineExceeded
	ErrStaleEpoch       = engine.ErrStaleEpoch
)

// LogReplica is a running log-shipping replica (internal/repl.Replica
// re-exported): a goroutine streaming the primary's committed log over the
// wire protocol into a byte-identical local mirror, replaying it into a
// read-only engine. LogReplica.DB serves snapshot reads pinned at the replay
// watermark; writes fail with ErrReplicaReadOnly until LogReplica.Promote
// turns the replica into a full primary over its mirrored log.
type LogReplica = repl.Replica

// ReplicaStats snapshots a replica's streaming progress: watermark, lag
// behind the primary's durable horizon, and apply counters.
type ReplicaStats = repl.Stats

// Replication availability errors. ErrAlreadyPromoted reports a second
// Promote. ErrReplStreamFatal means the replica cannot resume from its
// watermark (the primary truncated or corrupted that log suffix) and must be
// re-seeded from a fresh copy; transient transport failures never surface —
// the replica reconnects and resubscribes on its own.
var (
	ErrAlreadyPromoted = repl.ErrPromoted
	ErrReplStreamFatal = repl.ErrStreamFatal
)

// StartReplica opens (or re-opens) a replica whose log mirror lives in
// opts.Dir/opts.Storage and streams from the primary ermia-server at
// primaryAddr. Whatever the mirror already holds is recovered before
// streaming resumes from the watermark, so a restarted replica re-fetches
// only what it missed.
func StartReplica(primaryAddr string, opts Options) (*LogReplica, error) {
	cfg, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	return repl.Start(repl.Config{PrimaryAddr: primaryAddr, Core: cfg})
}

// ReplicaConfig configures replication beyond the primary address: dial
// hooks, reconnect backoff, and the heartbeat-silence detector that feeds a
// ReplicaSupervisor (internal/repl.Config re-exported).
type ReplicaConfig = repl.Config

// ReplicaSupervisor watches a replica's primary-liveness signal and
// promotes it automatically once the primary has been silent for longer
// than its SilenceTimeout. Promotion claims the next primary epoch, which
// fences the old primary off clients and replicas alike; see the type's
// documentation in internal/repl for the safety argument.
type ReplicaSupervisor = repl.Supervisor

// StartReplicaWith is StartReplica with full control over the replication
// config (heartbeat timeout, reconnect policy, dial hook). The engine-side
// mirror configuration still comes from opts; cfg.Core is overwritten.
func StartReplicaWith(cfg ReplicaConfig, opts Options) (*LogReplica, error) {
	core, err := opts.coreConfig()
	if err != nil {
		return nil, err
	}
	cfg.Core = core
	return repl.Start(cfg)
}

// ---- Relational query layer ----
//
// internal/query re-exported: a volcano-style operator tree (scan, filter,
// project, hash join, aggregate, order-by, limit) evaluated over a typed row
// codec on top of Txn.Scan. Every plan executes inside one read-only
// snapshot, so long analytical queries never block or abort writers — SI
// heterogeneous-workload behaviour at the query layer. Plans are a compact
// typed AST (not SQL) with a deterministic binary encoding; the same encoded
// plan runs embedded, over the wire via Client.Query, or against a
// LogReplica's engine. See DESIGN.md ("Query processing").
//
//	sch := ermia.QuerySchema{
//	    Key: []ermia.QueryColumn{{Name: "id", Enc: ermia.EncKeyU32}},
//	    Val: []ermia.QueryColumn{{Name: "amount", Enc: ermia.EncValI}},
//	}
//	plan := ermia.NewQueryPlan(ermia.QueryAggregate(
//	    ermia.QueryFilter(ermia.QueryScan("orders", sch),
//	        ermia.QGt(ermia.QCol(1), ermia.QInt(100))),
//	    nil, ermia.QCount(), ermia.QSum(ermia.QCol(1))))
//	rows, err := ermia.RunQuery(db, 0, plan)

// QueryPlan is an executable analytical plan (internal/query.Plan).
type QueryPlan = query.Plan

// QueryNode is one operator in a plan tree.
type QueryNode = query.Node

// QueryExpr is a scalar expression over a row.
type QueryExpr = query.Expr

// QueryValue is one typed scalar (int, float, or string).
type QueryValue = query.Value

// QueryRow is one result row.
type QueryRow = query.Row

// QueryRows is a pull iterator over result rows: Next returns (nil, nil) at
// end of stream; always Close.
type QueryRows = query.Rows

// QuerySchema describes how a table's key/value bytes decode into columns.
type QuerySchema = query.Schema

// QueryColumn is one column of a QuerySchema.
type QueryColumn = query.Column

// QueryOptions bounds a query execution (row budget, cancellation hook).
type QueryOptions = query.Options

// QueryAggSpec is one aggregate computation (COUNT/SUM/MIN/MAX/AVG).
type QueryAggSpec = query.AggSpec

// QuerySortKey is one order-by key.
type QuerySortKey = query.SortKey

// Column encodings for QuerySchema: EncKey* decode order-preserving key
// fields, EncVal* decode varint tuple fields, and the Raw forms capture the
// undecoded remainder as an opaque string column.
const (
	EncKeyU8  = query.EncKeyU8
	EncKeyU16 = query.EncKeyU16
	EncKeyU32 = query.EncKeyU32
	EncKeyU64 = query.EncKeyU64
	EncKeyI64 = query.EncKeyI64
	EncKeyStr = query.EncKeyStr
	EncKeyRaw = query.EncKeyRaw
	EncValU   = query.EncValU
	EncValI   = query.EncValI
	EncValF   = query.EncValF
	EncValS   = query.EncValS
	EncValRaw = query.EncValRaw
)

// Plan-node builders.
var (
	QueryScan      = query.Scan
	QueryScanRange = query.ScanRange
	QueryFilter    = query.Filter
	QueryProject   = query.Project
	QueryHashJoin  = query.HashJoin
	QueryAggregate = query.Aggregate
	QueryOrderBy   = query.OrderBy
	QueryLimit     = query.Limit
	NewQueryPlan   = query.NewPlan
)

// Expression builders (Q-prefixed to keep the facade namespace flat).
var (
	QCol     = query.Col
	QInt     = query.ConstInt
	QFloat   = query.ConstFloat
	QStr     = query.ConstStr
	QEq      = query.Eq
	QNe      = query.Ne
	QLt      = query.Lt
	QLe      = query.Le
	QGt      = query.Gt
	QGe      = query.Ge
	QAnd     = query.And
	QOr      = query.Or
	QNot     = query.Not
	QAdd     = query.Add
	QSub     = query.Sub
	QMul     = query.Mul
	QDiv     = query.Div
	QToInt   = query.ToInt
	QToFloat = query.ToFloat
)

// Aggregate builders.
var (
	QCount = query.Count
	QSum   = query.Sum
	QMin   = query.Min
	QMax   = query.Max
	QAvg   = query.Avg
)

// Query-plan errors. ErrBadQueryPlan is fatal (fix the plan);
// ErrQueryCancelled reports a cancelled execution; ErrQueryOverflow a result
// or materialization that exceeded the row budget.
var (
	ErrBadQueryPlan   = engine.ErrBadQueryPlan
	ErrQueryCancelled = engine.ErrQueryCancelled
	ErrQueryOverflow  = engine.ErrQueryOverflow
)

// RunQuery executes plan inside one fresh read-only snapshot on any local
// Engine (primary or replica) and returns the full result. For streaming,
// bounded, or cancellable execution use query.Run via ExecQuery's options.
func RunQuery(db Engine, worker int, plan *QueryPlan) ([]QueryRow, error) {
	return query.RunReadOnly(db, worker, plan, query.Options{})
}

// ExecQuery is RunQuery with explicit execution options (row budget,
// cancellation hook).
func ExecQuery(db Engine, worker int, plan *QueryPlan, opts QueryOptions) ([]QueryRow, error) {
	return query.RunReadOnly(db, worker, plan, opts)
}

// QueryInTxn runs plan inside an already-open transaction on db and
// returns the full result. The plan sees exactly the versions txn.Scan
// would return, so a read-write transaction can mix relational scans with
// imperative updates and commit them atomically.
func QueryInTxn(db Engine, txn Txn, plan *QueryPlan) ([]QueryRow, error) {
	return query.Collect(txn, db.OpenTable, plan, query.Options{})
}

// EncodeQueryPlan serializes a plan to its deterministic wire encoding.
func EncodeQueryPlan(plan *QueryPlan) ([]byte, error) { return plan.Encode() }

// DecodeQueryPlan parses a wire-encoded plan (without validating it — call
// Validate before executing untrusted bytes).
func DecodeQueryPlan(data []byte) (*QueryPlan, error) { return query.DecodePlan(data) }

// QueryRowIter streams a remote query's results (client.RowIter
// re-exported); obtained from Client.Query.
type QueryRowIter = client.RowIter

// ---- Horizontal sharding & distributed commit ----
//
// internal/shard re-exported: a versioned shard map partitions tables
// across independent ermia-server processes (hash of a configurable key
// prefix, or full replication for read-mostly catalogs), and a Router
// implements the same Engine interface over the whole fleet. Transactions
// that touch one shard commit exactly like an unsharded client (the fast
// path); transactions that wrote on several shards commit with two-phase
// commit — durable prepare records on every participant, a durable
// coordinator decision log, and presumed-abort recovery for coordinator
// crashes. See DESIGN.md ("Sharding & distributed commit").
//
//	m, _ := ermia.LoadShardMap("shards.json")
//	r, _ := ermia.NewShardRouter(m, ermia.ShardRouterOptions{DecisionLog: "decisions.log"})
//	defer r.Close()
//	err := ermia.WithRetry(r, 0, func(txn ermia.Txn) error { ... })

// ShardMap is the versioned placement policy: the shard servers (with
// optional replicas) and the per-table partitioning rules.
type ShardMap = shard.Map

// ShardInfo is one shard's primary address plus replica fallbacks.
type ShardInfo = shard.ShardInfo

// ShardTableRule is one table's placement rule: hash of a key prefix
// (PrefixLen) or full replication (Replicated).
type ShardTableRule = shard.TableRule

// ShardRouter is the sharded Engine: single-shard fast path, merge scans,
// and two-phase commit across shards.
type ShardRouter = shard.Router

// ShardRouterOptions configures a ShardRouter (pool sizes, decision-log
// path, dial hook, shard-identity verification).
type ShardRouterOptions = shard.Options

// NewShardRouter dials every shard in m and returns a router over them.
func NewShardRouter(m *ShardMap, opts ShardRouterOptions) (*ShardRouter, error) {
	return shard.NewRouter(m, opts)
}

// LoadShardMap reads and validates a shard map from a JSON file.
func LoadShardMap(path string) (*ShardMap, error) { return shard.LoadMapFile(path) }

// ParseShardMap parses and validates a shard map from JSON bytes.
func ParseShardMap(data []byte) (*ShardMap, error) { return shard.ParseMapJSON(data) }

// PoolStats is one shard client pool's transport counters (requests,
// retries, connection losses, failover rotations); see Client.Stats and
// ShardRouter.PoolStats.
type PoolStats = client.PoolStats

// Distributed-commit errors. ErrTxnInDoubt is retryable under the
// idempotent-body contract: the outcome is indeterminate until the
// coordinator's resolver delivers the logged decision (retries conflict
// against the prepared writes until then). ErrShardMoved reports a stale
// shard map and is retryable after a map refresh.
var (
	ErrTxnInDoubt = engine.ErrTxnInDoubt
	ErrShardMoved = engine.ErrShardMoved
)
