package ermia

import (
	"fmt"
	"testing"
	"time"

	"ermia/internal/core"
	"ermia/internal/epoch"
	"ermia/internal/wal"
)

// BenchmarkAblationSecondaryIndex quantifies the design choice §2 of the
// paper discusses: a secondary index that stores OIDs reaches the record
// with one tree probe, while the key-mapping alternative ("mapping primary
// keys and secondary keys") shifts the burden to readers — every secondary
// access entails an additional primary-index probe.
func BenchmarkAblationSecondaryIndex(b *testing.B) {
	const rows = 50000
	primKey := func(i int) []byte { return []byte(fmt.Sprintf("pk%08d", i)) }
	secKey := func(i int) []byte { return []byte(fmt.Sprintf("sk%08d", i*7%rows)) }

	b.Run("native-oid", func(b *testing.B) {
		db, err := core.Open(core.Config{WAL: wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20}})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		users := db.CreateTable("users")
		byName := db.CreateSecondaryIndex(users, "by_name")
		for base := 0; base < rows; base += 1000 {
			txn := db.BeginTxn(0)
			for i := base; i < base+1000 && i < rows; i++ {
				if err := txn.InsertWithSecondary(users, primKey(i), []byte("payload-data"),
					[]core.SecondaryEntry{{Index: byName, Key: secKey(i)}}); err != nil {
					b.Fatal(err)
				}
			}
			if err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			txn := db.BeginTxn(0)
			if _, err := txn.GetBySecondary(byName, secKey(i%rows)); err != nil {
				b.Fatal(err)
			}
			txn.Abort()
		}
	})

	b.Run("key-mapping", func(b *testing.B) {
		db, err := core.Open(core.Config{WAL: wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20}})
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		users := db.CreateTable("users")
		mapping := db.CreateTable("users_by_name") // secondary key -> primary key
		for base := 0; base < rows; base += 1000 {
			txn := db.Begin(0)
			for i := base; i < base+1000 && i < rows; i++ {
				if err := txn.Insert(users, primKey(i), []byte("payload-data")); err != nil {
					b.Fatal(err)
				}
				if err := txn.Insert(mapping, secKey(i), primKey(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			txn := db.Begin(0)
			pk, err := txn.Get(mapping, secKey(i%rows))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := txn.Get(users, pk); err != nil { // the extra probe
				b.Fatal(err)
			}
			txn.Abort()
		}
	})
}

// BenchmarkAblationEpochQuiesce measures the paper's conditional quiescent
// point (one shared read in the common case) against a full Exit/Enter
// round trip — the design that lets ERMIA run epoch managers at very fine
// timescales.
func BenchmarkAblationEpochQuiesce(b *testing.B) {
	b.Run("conditional-quiesce", func(b *testing.B) {
		m := epoch.NewManager(0)
		s := m.Register()
		defer s.Unregister()
		s.Enter()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Quiesce()
		}
	})
	b.Run("exit-enter", func(b *testing.B) {
		m := epoch.NewManager(0)
		s := m.Register()
		defer s.Unregister()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Exit()
			s.Enter()
		}
	})
}

// BenchmarkAblationSerializableSchemes compares the two serializable CC
// schemes the physical layer supports — SSN and commit-time read-set
// validation — on a heterogeneous mix: 90% short writers, 10% long
// read-mostly transactions. It reproduces in miniature the paper's central
// claim: validation (writer-wins) starves the long readers that SSN
// commits. The reported commit% is for the long readers only.
func BenchmarkAblationSerializableSchemes(b *testing.B) {
	const rows = 20000
	key := func(i int) []byte { return []byte(fmt.Sprintf("r%08d", i%rows)) }
	for _, mode := range []core.Isolation{core.SSN, core.ReadValidation} {
		b.Run(mode.String(), func(b *testing.B) {
			db, err := core.Open(core.Config{
				WAL:       wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20},
				Isolation: mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tbl := db.CreateTable("t")
			for base := 0; base < rows; base += 1000 {
				txn := db.Begin(0)
				for i := base; i < base+1000; i++ {
					txn.Insert(tbl, key(i), []byte("payload"))
				}
				if err := txn.Commit(); err != nil {
					b.Fatal(err)
				}
			}

			// A background short-writer keeps overwriting random rows.
			stop := make(chan struct{})
			go func() {
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					txn := db.Begin(1)
					txn.Update(tbl, key(i*37), []byte("overwrite"))
					txn.Commit()
					i++
				}
			}()

			commits, aborts := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The long read-mostly transaction: 500 reads, one write.
				txn := db.Begin(2)
				ok := true
				for j := 0; j < 500 && ok; j++ {
					if _, err := txn.Get(tbl, key(i*13+j*41)); err != nil {
						ok = false
					}
				}
				if ok {
					if err := txn.Update(tbl, key(i*13), []byte("reader-write")); err != nil {
						ok = false
					}
				}
				if ok && txn.Commit() == nil {
					commits++
				} else {
					txn.Abort()
					aborts++
				}
			}
			b.StopTimer()
			close(stop)
			if n := commits + aborts; n > 0 {
				b.ReportMetric(float64(commits)/float64(n)*100, "reader-commit%")
			}
		})
	}
}

// BenchmarkAblationGroupCommit measures the cost a transaction pays to wait
// for durability versus ERMIA's default asynchronous group commit.
func BenchmarkAblationGroupCommit(b *testing.B) {
	for _, durable := range []bool{false, true} {
		name := "async"
		if durable {
			name = "wait-durable"
		}
		b.Run(name, func(b *testing.B) {
			db, err := core.Open(core.Config{
				WAL: wal.Config{SegmentSize: 64 << 20, BufferSize: 8 << 20,
					IdleSleep: 50 * time.Microsecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tbl := db.CreateTable("t")
			txn := db.Begin(0)
			txn.Insert(tbl, []byte("k"), []byte("v0"))
			if err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txn := db.Begin(0)
				if err := txn.Update(tbl, []byte("k"), []byte("vN")); err != nil {
					b.Fatal(err)
				}
				if err := txn.Commit(); err != nil {
					b.Fatal(err)
				}
				if durable {
					if err := db.WaitDurable(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
