package ermia

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ermia/internal/wal"
)

func TestOpenAndBasicUse(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := db.CreateTable("t")
	if err := WithRetry(db, 0, func(txn Txn) error {
		return txn.Insert(tbl, []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(0)
	v, err := txn.Get(tbl, []byte("k"))
	txn.Abort()
	if err != nil || string(v) != "v" {
		t.Fatalf("get: %q %v", v, err)
	}
}

func TestOpenSerializable(t *testing.T) {
	db, err := Open(Options{Serializable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !db.Serializable() {
		t.Fatal("SSN not enabled")
	}
}

func TestOpenReadValidation(t *testing.T) {
	db, err := Open(Options{Isolation: ReadValidation})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.IsolationLevel() != ReadValidation {
		t.Fatalf("isolation = %v", db.IsolationLevel())
	}
	tbl := db.CreateTable("t")
	if err := WithRetry(db, 0, func(txn Txn) error {
		return txn.Insert(tbl, []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverSiloViaFacade(t *testing.T) {
	st := NewMemStorage()
	db, err := OpenSilo(SiloOptions{Storage: st})
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	if err := WithRetry(db, 0, func(txn Txn) error {
		return txn.Insert(tbl, []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := RecoverSilo(SiloOptions{Storage: st})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	txn := db2.Begin(0)
	defer txn.Abort()
	if v, err := txn.Get(db2.OpenTable("t"), []byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("silo facade recovery: %q %v", v, err)
	}
}

func TestOpenSiloBaseline(t *testing.T) {
	db, err := OpenSilo(SiloOptions{Snapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := db.CreateTable("t")
	if err := WithRetry(db, 0, func(txn Txn) error {
		return txn.Insert(tbl, []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	ro := db.BeginReadOnly(0)
	defer ro.Abort()
}

func TestRecoverRoundTripViaFacade(t *testing.T) {
	st := wal.NewMemStorage()
	db, err := Open(Options{Storage: st})
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	if err := WithRetry(db, 0, func(txn Txn) error {
		return txn.Insert(tbl, []byte("persist"), []byte("me"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitDurable(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Recover(Options{Storage: st})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2 := db2.OpenTable("t")
	txn := db2.Begin(0)
	defer txn.Abort()
	if v, err := txn.Get(tbl2, []byte("persist")); err != nil || string(v) != "me" {
		t.Fatalf("recovered: %q %v", v, err)
	}
}

func TestRecoverFromDirectory(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.CreateTable("t")
	if err := WithRetry(db, 0, func(txn Txn) error {
		return txn.Insert(tbl, []byte("on-disk"), []byte("yes"))
	}); err != nil {
		t.Fatal(err)
	}
	db.WaitDurable()
	db.Close()

	db2, err := Recover(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	txn := db2.Begin(0)
	defer txn.Abort()
	if v, err := txn.Get(db2.OpenTable("t"), []byte("on-disk")); err != nil || string(v) != "yes" {
		t.Fatalf("disk recovery: %q %v", v, err)
	}
}

func TestWithRetryResolvesConflicts(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := db.CreateTable("t")
	if err := WithRetry(db, 0, func(txn Txn) error {
		return txn.Insert(tbl, []byte("n"), []byte("0"))
	}); err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := WithRetry(db, id, func(txn Txn) error {
					v, err := txn.Get(tbl, []byte("n"))
					if err != nil {
						return err
					}
					var n int
					fmt.Sscanf(string(v), "%d", &n)
					return txn.Update(tbl, []byte("n"), []byte(fmt.Sprintf("%d", n+1)))
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	txn := db.Begin(0)
	defer txn.Abort()
	v, _ := txn.Get(tbl, []byte("n"))
	var n int
	fmt.Sscanf(string(v), "%d", &n)
	if n != workers*per {
		t.Fatalf("counter = %d, want %d", n, workers*per)
	}
}

func TestWithRetryPropagatesLogicErrors(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl := db.CreateTable("t")
	err = WithRetry(db, 0, func(txn Txn) error {
		_, err := txn.Get(tbl, []byte("missing"))
		return err
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}
